//! State expansion: ample selection ∘ sleep filtering.

use wbmem::{Machine, ProcId, Process, SchedElem};

use crate::ample;
use crate::sleep::SleepSet;

/// How a state's enabled choices were partitioned for exploration.
#[derive(Clone, Debug, Default)]
pub struct Expansion {
    /// The choices to explore, in the order the machine enumerated them.
    pub explore: Vec<SchedElem>,
    /// Choices pruned by ample selection (other processes' choices). Kept
    /// so the caller can enforce the cycle proviso: if an explored step
    /// closes a cycle, these are appended back and explored after all.
    pub excluded: Vec<SchedElem>,
    /// The ample process, when the reduction applied.
    pub ample: Option<ProcId>,
    /// Enabled choices skipped because they were asleep.
    pub slept: usize,
}

/// Partition the machine's enabled `choices` for exploration: pick an
/// ample process if `use_ample` (and one qualifies), then drop choices the
/// `sleep` set already covers. Ample-pruned choices are *not* slept — they
/// land in [`Expansion::excluded`] for the cycle-proviso fallback.
///
/// Every reduction decision is reported through `obs`: sleep-filtered
/// choices as [`ftobs::Metric::SleepHits`], and — when ample selection was
/// requested — whether it applied ([`ftobs::Metric::AmpleApplied`]) or
/// fell back to the full enabled set
/// ([`ftobs::Metric::AmpleFallbacks`]). Pass
/// [`ftobs::Recorder::disabled`] to opt out.
#[must_use]
pub fn expand<P: Process>(
    m: &Machine<P>,
    choices: &[SchedElem],
    sleep: &SleepSet,
    use_ample: bool,
    obs: &ftobs::Recorder,
) -> Expansion {
    let ample = if use_ample {
        ample::select(m, choices)
    } else {
        None
    };
    let mut out = Expansion {
        ample,
        ..Expansion::default()
    };
    for &e in choices {
        if ample.is_some_and(|p| e.proc != p) {
            out.excluded.push(e);
        } else if sleep.contains(e) {
            out.slept += 1;
        } else {
            out.explore.push(e);
        }
    }
    if use_ample {
        obs.incr(if ample.is_some() {
            ftobs::Metric::AmpleApplied
        } else {
            ftobs::Metric::AmpleFallbacks
        });
    }
    if out.slept > 0 {
        obs.add(ftobs::Metric::SleepHits, out.slept as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fencevm::{Asm, VmProc};
    use wbmem::{MachineConfig, MemoryLayout, MemoryModel};

    fn writer(name: &str, reg: i64) -> VmProc {
        let mut a = Asm::new(name);
        a.write(reg, 1i64);
        a.fence();
        a.ret(0i64);
        VmProc::new(a.assemble().into())
    }

    fn machine(procs: Vec<VmProc>) -> Machine<VmProc> {
        let cfg = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned());
        Machine::new(cfg, procs)
    }

    #[test]
    fn ample_expansion_excludes_other_processes() {
        let m = machine(vec![writer("w0", 0), writer("w1", 1)]);
        let choices = m.choices();
        let x = expand(
            &m,
            &choices,
            &SleepSet::new(),
            true,
            &ftobs::Recorder::disabled(),
        );
        assert_eq!(x.ample, Some(ProcId(0)));
        assert!(x.explore.iter().all(|e| e.proc == ProcId(0)));
        assert!(x.excluded.iter().all(|e| e.proc == ProcId(1)));
        assert_eq!(x.explore.len() + x.excluded.len(), choices.len());
        assert_eq!(x.slept, 0);
    }

    #[test]
    fn disabled_ample_explores_everything_not_asleep() {
        let m = machine(vec![writer("w0", 0), writer("w1", 1)]);
        let choices = m.choices();
        let mut sleep = SleepSet::new();
        sleep.insert(choices[0], m.choice_footprint(choices[0]));
        let x = expand(&m, &choices, &sleep, false, &ftobs::Recorder::disabled());
        assert_eq!(x.ample, None);
        assert!(x.excluded.is_empty());
        assert_eq!(x.slept, 1);
        assert_eq!(x.explore.len(), choices.len() - 1);
        assert!(!x.explore.contains(&choices[0]));
    }

    #[test]
    fn sleeping_an_ample_choice_shrinks_the_exploration() {
        let m = machine(vec![writer("w0", 0), writer("w1", 1)]);
        let choices = m.choices();
        let ample_elem = choices
            .iter()
            .copied()
            .find(|e| e.proc == ProcId(0))
            .unwrap();
        let mut sleep = SleepSet::new();
        sleep.insert(ample_elem, m.choice_footprint(ample_elem));
        let x = expand(&m, &choices, &sleep, true, &ftobs::Recorder::disabled());
        assert_eq!(x.ample, Some(ProcId(0)));
        assert_eq!(x.slept, 1);
        assert!(!x.explore.contains(&ample_elem));
    }
}
