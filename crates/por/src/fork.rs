//! Fork points: serialized DFS continuations for work stealing.
//!
//! The work-stealing DPOR engine (`modelcheck`'s `Engine::ParallelDpor`)
//! lets a busy worker donate the *unexplored remainder* of one of its
//! DFS frames instead of letting peers idle. A donation must carry
//! everything the reduced search tracked for that frame — the sleep set
//! it was entered with, the siblings already taken (the candidates put
//! to sleep in later children), the ample-excluded choices (owed to the
//! cycle proviso), and the remaining reorder budget — plus a **replay
//! path**: the schedule from the root to the frame's state, which is how
//! the thief re-materializes the state on its own machine (undo tokens
//! cannot cross machines). [`ForkPoint`] is that serialization.
//!
//! Handing a fork point over is an exact continuation relocation: the
//! thief explores precisely the `(choices, excluded, sleep, taken,
//! remaining)` tuple the owner would have, from the same state, with the
//! same pruning rules — which is why the reduction's soundness argument
//! is indifferent to *which* thread runs the remainder (see DESIGN.md).
//!
//! [`ForkQueue`] is the bounded MPMC channel the fork points travel
//! through. It deliberately stays a mutexed deque: donations happen at
//! the workers' poll cadence (hundreds of steps apart), so the queue is
//! never hot — the per-transition hot path is the fingerprint table
//! ([`crate::fptable`]), which is the structure that must be lock-free.
//! The queue additionally tracks how many workers are mid-task, giving
//! distributed termination detection: when the queue is empty **and** no
//! worker is busy, no new work can ever appear, and every blocked
//! [`take`](ForkQueue::take) returns `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

use wbmem::{Footprint, SchedElem};

use crate::sleep::SleepSet;

/// The unexplored remainder of one DFS frame, serialized for transfer to
/// another worker. See the module docs; field semantics mirror the
/// sequential DPOR engine's frame.
#[derive(Clone, Debug)]
pub struct ForkPoint {
    /// Schedule from the root state to this frame's state. The thief
    /// replays it (every element must step) to re-materialize the state;
    /// the prefix states also re-seed the thief's on-stack set so the
    /// cycle proviso keeps firing exactly as it would have for the owner.
    pub path: Vec<SchedElem>,
    /// Sleep set the frame was entered with.
    pub sleep: SleepSet,
    /// Siblings already explored from this frame, with the footprints
    /// they had when taken.
    pub taken: Vec<(SchedElem, Footprint)>,
    /// Choices still to explore, in the owner's exploration order.
    pub choices: Vec<SchedElem>,
    /// Ample-excluded choices, reinstated if the cycle proviso fires.
    pub excluded: Vec<SchedElem>,
    /// Remaining reorder budget on entry to the frame's state.
    pub remaining: u32,
    /// Causal trace span this fork descends from (`ftobs` span id of the
    /// donor's `publish` instant, or the engine/resume root span for
    /// seeded forks). `0` when tracing is off; carried opaquely — `por`
    /// never interprets it, but it must survive queue transfer and
    /// checkpoint round-trips so steal edges stay attributable.
    pub span: u64,
}

struct QueueState {
    tasks: VecDeque<ForkPoint>,
    /// Workers currently holding a task taken from the queue.
    working: usize,
    closed: bool,
}

/// Bounded MPMC queue of [`ForkPoint`]s with termination detection; see
/// the module docs.
pub struct ForkQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    cap: usize,
}

impl ForkQueue {
    /// An empty queue holding at most `cap` pending fork points.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                working: 0,
                closed: false,
            }),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Publish a fork point. Returns it back as `Err` when the queue is
    /// full or closed, so the donor can fold the work back into its own
    /// frame instead of losing it.
    ///
    /// # Errors
    ///
    /// The rejected fork point, unchanged. The large `Err` is the point:
    /// handing the value back lets the donor restore its frame by move
    /// instead of cloning the path/choices up front.
    #[allow(clippy::result_large_err)]
    pub fn publish(&self, fork: ForkPoint) -> Result<(), ForkPoint> {
        let mut s = self.lock();
        if s.closed || s.tasks.len() >= self.cap {
            return Err(fork);
        }
        s.tasks.push_back(fork);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Whether donating now would help: pending work has fallen below
    /// `low_water` and the queue still has room. Donors poll this before
    /// paying for a path snapshot.
    #[must_use]
    pub fn wants_work(&self, low_water: usize) -> bool {
        let s = self.lock();
        !s.closed && s.tasks.len() < low_water.min(self.cap)
    }

    /// Pending fork points (racy; for frontier accounting).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().tasks.len()
    }

    /// Whether no fork point is pending (racy; see [`len`](Self::len)).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take a task, blocking while the queue is empty but some worker is
    /// still busy (it may yet publish). Returns `None` when the queue is
    /// closed or when no task is pending and no worker is busy — global
    /// termination. A `Some` return marks the caller busy until it calls
    /// [`done`](Self::done).
    pub fn take(&self) -> Option<ForkPoint> {
        let mut s = self.lock();
        loop {
            if s.closed {
                return None;
            }
            if let Some(t) = s.tasks.pop_front() {
                s.working += 1;
                return Some(t);
            }
            if s.working == 0 {
                return None;
            }
            s = self
                .available
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Mark a task taken via [`take`](Self::take) finished. Wakes every
    /// waiter when this was the last busy worker and nothing is pending
    /// (they all observe termination and return `None`).
    pub fn done(&self) {
        let mut s = self.lock();
        s.working = s.working.saturating_sub(1);
        let drained = s.working == 0 && s.tasks.is_empty();
        drop(s);
        if drained {
            self.available.notify_all();
        }
    }

    /// Close the queue: every current and future [`take`](Self::take)
    /// returns `None` and publishes are rejected. Used on cancellation
    /// (violation found, state limit, deadline, panic). Pending tasks are
    /// *kept* — they are unexplored frontier, and a checkpoint wants them;
    /// [`drain`](Self::drain) collects them.
    pub fn close(&self) {
        let mut s = self.lock();
        s.closed = true;
        drop(s);
        self.available.notify_all();
    }

    /// Close the queue and return every pending fork point. The pending
    /// tasks are exactly the donated-but-never-stolen frontier, which a
    /// checkpoint must persist alongside the workers' own open frames.
    #[must_use]
    pub fn drain(&self) -> Vec<ForkPoint> {
        let mut s = self.lock();
        s.closed = true;
        let pending = s.tasks.drain(..).collect();
        drop(s);
        self.available.notify_all();
        pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fork(n: u32) -> ForkPoint {
        ForkPoint {
            path: Vec::new(),
            sleep: SleepSet::new(),
            taken: Vec::new(),
            choices: Vec::new(),
            excluded: Vec::new(),
            remaining: n,
            span: u64::from(n),
        }
    }

    #[test]
    fn bounded_publish() {
        let q = ForkQueue::new(2);
        assert!(q.wants_work(2));
        assert!(q.publish(fork(0)).is_ok());
        assert!(q.publish(fork(1)).is_ok());
        assert!(!q.wants_work(2));
        let rejected = q.publish(fork(2)).unwrap_err();
        assert_eq!(rejected.remaining, 2, "rejected fork comes back");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn take_returns_none_on_termination() {
        let q = ForkQueue::new(4);
        q.publish(fork(7)).unwrap();
        let t = q.take().expect("seeded task");
        assert_eq!(t.remaining, 7);
        // The only busy worker finishes without publishing: terminated.
        q.done();
        assert!(q.take().is_none());
    }

    #[test]
    fn close_keeps_pending_and_unblocks() {
        let q = ForkQueue::new(4);
        q.publish(fork(0)).unwrap();
        q.close();
        assert!(q.take().is_none(), "closed queue yields no tasks");
        assert!(q.publish(fork(1)).is_err(), "closed queue rejects");
        let pending = q.drain();
        assert_eq!(pending.len(), 1, "close preserves the frontier");
        assert_eq!(pending[0].remaining, 0);
    }

    #[test]
    fn drain_closes_and_returns_pending() {
        let q = ForkQueue::new(4);
        q.publish(fork(3)).unwrap();
        q.publish(fork(4)).unwrap();
        let pending = q.drain();
        assert_eq!(
            pending.iter().map(|f| f.remaining).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert!(q.take().is_none(), "drain closes the queue");
        assert!(q.drain().is_empty(), "second drain finds nothing");
    }

    #[test]
    fn blocked_takers_see_late_publishes() {
        let q = ForkQueue::new(8);
        q.publish(fork(0)).unwrap();
        let taken = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(t) = q.take() {
                        // The first task fans out two more; all must be
                        // drained before anyone observes termination.
                        if t.remaining == 0 {
                            q.publish(fork(1)).unwrap();
                            q.publish(fork(1)).unwrap();
                        }
                        taken.fetch_add(1, Ordering::SeqCst);
                        q.done();
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::SeqCst), 3);
    }
}
