//! A lock-free sharded fingerprint table.
//!
//! The parallel engines dedup states by `u128` fingerprint. The seed
//! implementation (`Vec<Mutex<HashSet<u128>>>`) serializes every insert
//! behind a shard mutex; under work stealing the visited set is the one
//! piece of state *every* worker touches on *every* transition, so it is
//! the contention hot spot. This table replaces it with open-addressing
//! probe sequences over `(AtomicU64, AtomicU64)` slot pairs and a single
//! CAS per claimed state — no locks anywhere on the insert path.
//!
//! ## Layout
//!
//! 64 shards, routed by the fingerprint's high bits (the same routing the
//! seed sharding used, so shard balance characteristics carry over). Each
//! shard owns a list of lazily allocated segments with doubling sizes;
//! segments are append-only and slots are **write-once** (`0 → key`,
//! never mutated again), which is what makes the lock-free argument
//! short.
//!
//! ## Insert protocol and memory ordering
//!
//! A fingerprint is split into two nonzero words `(w0, w1)` (`0` is the
//! empty-slot sentinel; see [`encode`]). Every prober for a given
//! fingerprint walks the **same deterministic slot sequence**: segments
//! in index order, a bounded linear-probe window inside each. Per slot:
//!
//! 1. load `w0` (`Acquire`); if empty, `compare_exchange(0, w0)`
//!    (`AcqRel`). The winner stores `w1` (`Release`) and owns the state.
//! 2. a CAS loser re-reads the slot it lost; if the occupant's `w0`
//!    matches, it spins until the winner's `w1` publish lands (slots are
//!    write-once, so *any* nonzero `w1` read is the winner's value) and
//!    compares. A full match is a duplicate; a mismatch moves to the
//!    next slot in the sequence.
//!
//! **No lost inserts:** a prober only claims a slot after failing to
//! match its key at every earlier slot of the sequence, and a slot's
//! occupant never changes once claimed. Two racers for the same key
//! therefore converge on the same first-free slot: exactly one CAS
//! succeeds (`true`), and the loser — whether it observed the claim via
//! its plain load or via its failed CAS — matches there and returns
//! `false`. Distinct keys can never merge (full 128-bit compare), and a
//! key can never be claimed twice (the second claimer would have had to
//! pass the first claim without matching it, which the write-once
//! modification order forbids). The stress test in
//! `tests/fptable_stress.rs` hammers exactly this property.
//!
//! Zero-word remapping makes two fingerprints collide iff one has a zero
//! half where the other has the tag constant — a `2^-128`-class event,
//! the same order as a fingerprint collision itself (which every engine
//! in this repository already accepts).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Shard count; must be a power of two. Matches the seed sharding so the
/// routing `(fp >> 64) & (SHARDS - 1)` distributes identically.
const SHARDS: usize = 64;

/// Maximum segments per shard. Segment `k` holds `SEG0_SLOTS << k`
/// slots, so the aggregate capacity at the cap is astronomically larger
/// than any reachable state count; running out panics (and the engines'
/// panic isolation turns that into a sequential rerun).
const SEGMENTS: usize = 16;

/// Slots in a shard's first segment (power of two). Sized so the default
/// 2M-state budget fits within a handful of segments.
const SEG0_SLOTS: usize = 4096;

/// Consecutive slots probed per segment before spilling to the next.
const PROBE_WINDOW: usize = 64;

/// Substitute for a zero key half (`0` is the empty-slot sentinel).
const ZERO_TAG: u64 = 0x9e37_79b9_7f4a_7c15;

/// Split a fingerprint into two guaranteed-nonzero words.
fn encode(fp: u128) -> (u64, u64) {
    let hi = (fp >> 64) as u64;
    let lo = fp as u64;
    (
        if hi == 0 { ZERO_TAG } else { hi },
        if lo == 0 { ZERO_TAG } else { lo },
    )
}

/// One open-addressing slot: `(w0, w1)` of an [`encode`]d fingerprint,
/// both zero while unclaimed. `w0` is the claim word (CAS target); `w1`
/// is published after a successful claim.
struct Slot {
    w0: AtomicU64,
    w1: AtomicU64,
}

fn alloc_segment(slots: usize) -> Box<[Slot]> {
    (0..slots)
        .map(|_| Slot {
            w0: AtomicU64::new(0),
            w1: AtomicU64::new(0),
        })
        .collect()
}

/// Spin until the claim at `slot` is fully published, then return its
/// second word. Write-once slots make any nonzero read authoritative.
fn published_w1(slot: &Slot) -> u64 {
    let mut spins = 0u32;
    loop {
        let w1 = slot.w1.load(Ordering::Acquire);
        if w1 != 0 {
            return w1;
        }
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

struct Shard {
    segments: [OnceLock<Box<[Slot]>>; SEGMENTS],
    /// Distinct fingerprints claimed in this shard.
    occupancy: AtomicUsize,
    /// Failed claim CASes (two probers raced for the same slot).
    cas_failures: AtomicU64,
    /// Occupied slots stepped over while probing (clustering measure).
    probe_collisions: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            segments: std::array::from_fn(|_| OnceLock::new()),
            occupancy: AtomicUsize::new(0),
            cas_failures: AtomicU64::new(0),
            probe_collisions: AtomicU64::new(0),
        }
    }
}

/// Lock-free set of `u128` fingerprints; see the module docs for the
/// insert protocol. Shared by reference across worker threads.
pub struct FpTable {
    shards: Vec<Shard>,
}

impl Default for FpTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FpTable {
    /// An empty table. Segments allocate lazily, so an unused table
    /// costs a few hundred bytes.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Insert `fp`; returns `true` iff it was not already present.
    ///
    /// # Panics
    ///
    /// If every segment of the target shard is saturated — a state count
    /// far beyond any configurable budget. Callers (the parallel
    /// engines) treat worker panics as a cancel-and-rerun-sequentially
    /// event, so even this absurd corner stays sound.
    pub fn insert(&self, fp: u128) -> bool {
        let shard = &self.shards[(fp >> 64) as usize & (SHARDS - 1)];
        let (w0, w1) = encode(fp);
        // Per-segment probe starts are derived from both words so probe
        // sequences of different keys decorrelate across segments.
        let h = w0.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ w1;
        for (seg_idx, seg_cell) in shard.segments.iter().enumerate() {
            let slots = SEG0_SLOTS << seg_idx;
            let seg = seg_cell.get_or_init(|| alloc_segment(slots));
            let mask = slots - 1;
            let start = h.rotate_left(seg_idx as u32 * 7) as usize & mask;
            for step in 0..PROBE_WINDOW.min(slots) {
                let slot = &seg[(start + step) & mask];
                let mut cur = slot.w0.load(Ordering::Acquire);
                if cur == 0 {
                    match slot
                        .w0
                        .compare_exchange(0, w0, Ordering::AcqRel, Ordering::Acquire)
                    {
                        Ok(_) => {
                            slot.w1.store(w1, Ordering::Release);
                            shard.occupancy.fetch_add(1, Ordering::Relaxed);
                            return true;
                        }
                        Err(observed) => {
                            shard.cas_failures.fetch_add(1, Ordering::Relaxed);
                            cur = observed;
                        }
                    }
                }
                if cur == w0 && published_w1(slot) == w1 {
                    return false;
                }
                shard.probe_collisions.fetch_add(1, Ordering::Relaxed);
            }
        }
        panic!("fptable: shard saturated ({SEGMENTS} segments)");
    }

    /// Distinct fingerprints inserted so far. Exact once concurrent
    /// inserts have completed (each claim increments exactly once); the
    /// engines read it after joining their workers and wire it to the
    /// `dedup_occupancy` gauge.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.occupancy.load(Ordering::Relaxed))
            .sum()
    }

    /// Whether nothing has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every fingerprint in the table, sorted. Shard and slot order (a
    /// race artifact) never leak: two tables holding the same set export
    /// identical vectors, and re-inserting the export into a fresh table
    /// reproduces the occupancy exactly — which is how a checkpoint
    /// pre-seeds a resumed run's table.
    ///
    /// Call after worker threads have quiesced: a claim racing with the
    /// walk may or may not be included (the walk spins out any claimed
    /// slot's `w1` publish, so it never reads a *torn* entry).
    ///
    /// The zero-word remapping is lossy in one `2^-64`-class corner: a
    /// fingerprint half equal to the tag constant exports as the zero
    /// half it is stored as — the same collision order every engine here
    /// already accepts.
    #[must_use]
    pub fn export(&self) -> Vec<u128> {
        let decode = |w: u64| if w == ZERO_TAG { 0 } else { w };
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for seg_cell in &shard.segments {
                let Some(seg) = seg_cell.get() else { continue };
                for slot in seg.iter() {
                    let w0 = slot.w0.load(Ordering::Acquire);
                    if w0 == 0 {
                        continue;
                    }
                    let w1 = published_w1(slot);
                    out.push((u128::from(decode(w0)) << 64) | u128::from(decode(w1)));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Aggregate contention events: failed claim CASes plus occupied
    /// slots stepped over while probing. Exported by the engines as the
    /// `fp_contention` counter.
    #[must_use]
    pub fn contention(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.cas_failures.load(Ordering::Relaxed) + s.probe_collisions.load(Ordering::Relaxed)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedup_len() {
        let t = FpTable::new();
        assert!(t.is_empty());
        assert!(t.insert(7));
        assert!(!t.insert(7));
        assert!(t.insert(8));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn zero_halves_are_distinct_keys() {
        let t = FpTable::new();
        // Every combination of zero/nonzero halves stays distinct.
        let keys = [0u128, 1, 1 << 64, (1 << 64) | 1, u128::MAX];
        for &k in &keys {
            assert!(t.insert(k), "first insert of {k:#x}");
        }
        for &k in &keys {
            assert!(!t.insert(k), "reinsert of {k:#x}");
        }
        assert_eq!(t.len(), keys.len());
    }

    #[test]
    fn identical_claim_words_disambiguate_on_w1() {
        let t = FpTable::new();
        // One fixed high word: every key routes to the same shard AND
        // claims slots with the same w0, so dedup decisions ride
        // entirely on the published w1 — the adversarial case for the
        // two-word protocol.
        let n = 3000u128;
        for i in 0..n {
            assert!(t.insert((0x2a << 64) | i));
        }
        for i in 0..n {
            assert!(!t.insert((0x2a << 64) | i));
        }
        assert_eq!(t.len(), n as usize);
    }

    #[test]
    fn export_is_sorted_and_occupancy_preserving() {
        let t = FpTable::new();
        // Mix of shard routes, zero halves, and a segment spill.
        let mut keys: Vec<u128> = (0..(SEG0_SLOTS as u128 + 50)).map(|i| i << 1 | 1).collect();
        keys.extend([0u128, 1, 1 << 64, u128::MAX, 0x7f << 64]);
        for &k in &keys {
            t.insert(k);
        }
        let exported = t.export();
        let mut expect = keys.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(exported, expect, "export is the sorted key set");
        // Import into a fresh table: same occupancy, same dedup behavior.
        let t2 = FpTable::new();
        for &k in &exported {
            assert!(t2.insert(k), "import inserts fresh");
        }
        assert_eq!(t2.len(), t.len());
        for &k in &keys {
            assert!(!t2.insert(k), "imported table dedups original keys");
        }
        assert_eq!(t2.export(), exported, "export∘import is idempotent");
    }

    #[test]
    fn overflow_into_later_segments() {
        let t = FpTable::new();
        // Push one shard (fixed high bits => fixed shard) well past its
        // first segment's capacity; inserts must spill, never lose keys.
        let n = (SEG0_SLOTS * 3) as u128;
        for i in 0..n {
            assert!(t.insert(i << 1 | 1));
        }
        assert_eq!(t.len() as u128, n);
        for i in 0..n {
            assert!(!t.insert(i << 1 | 1));
        }
        assert_eq!(t.len() as u128, n);
    }
}
