//! # por — partial-order reduction for the write-buffer machine
//!
//! The model checker's schedule space blows up doubly fast: process
//! interleavings multiply with commit orders (the system may flush any
//! buffered write at any point). Most of those schedules are equivalent —
//! they differ only in the order of steps that *commute*. This crate
//! provides the machinery to skip the redundant ones while preserving
//! every verdict the checker can produce:
//!
//! * [`SleepSet`] — transition-level pruning. A choice already explored
//!   from a sibling branch, and independent of everything since, is put to
//!   sleep: re-exploring it could only re-derive known states. Sleep sets
//!   preserve *all reachable states* (only redundant edges are skipped).
//! * [`VisitTable`] — state caching compatible with sleep sets: a state
//!   is re-entered iff no recorded visit used a subset sleep set (and, for
//!   bounded runs, at least as much remaining budget).
//! * [`select_ample`] / [`expand`] — state-level pruning. When every
//!   pending choice of one process is invisible to the checked properties
//!   and independent of every other process's entire future (static
//!   analysis + buffered writes + recovery code), only that process is
//!   scheduled. This is where the order-of-magnitude state reductions come
//!   from.
//! * [`conflict_counts`] — counterexample-core diagnostics: replay a
//!   schedule, classify every step pair with the same independence
//!   relation the reductions prune with, and tabulate per-register
//!   conflict counts. Fence synthesis (`crates/synth`) uses these to
//!   weight candidate fence sites.
//! * [`step_weight`] — an optional reorder bound that restricts the
//!   search to schedules with at most `k` steps where a program overtakes
//!   its own pending stores (bound 0 ≡ SC-equivalent schedules).
//! * [`FpTable`] / [`ForkPoint`] / [`ForkQueue`] — shared state for the
//!   *parallel* explorers: a lock-free sharded fingerprint table (the
//!   per-transition dedup hot path) and the serialized DFS continuations
//!   work-stealing workers trade through a bounded queue.
//! * [`Snapshot`] — a versioned, checksummed, atomically written on-disk
//!   image of an interrupted exploration (fork-point frontier + visited
//!   fingerprints + run metadata), the substrate of the checker's
//!   checkpoint/resume support.
//!
//! Independence is decided by [`wbmem::Footprint`]s, reported by the
//! machine for every schedule choice; soundness of the relation per memory
//! model is argued in the repository's `DESIGN.md`. The DFS driving these
//! pieces lives in the `modelcheck` crate (`Engine::Dpor`); this crate
//! deliberately depends only on `wbmem` so the reduction can be reused by
//! any explorer over the machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ample;
pub mod bound;
pub mod cores;
pub mod expand;
pub mod fork;
pub mod fptable;
pub mod sleep;
pub mod snapshot;
pub mod visited;

pub use ample::select as select_ample;
pub use bound::step_weight;
pub use cores::conflict_counts;
pub use expand::{expand, Expansion};
pub use fork::{ForkPoint, ForkQueue};
pub use fptable::FpTable;
pub use sleep::SleepSet;
pub use snapshot::{fnv1a, BaseCounts, RunMeta, Snapshot, SnapshotError};
pub use visited::VisitTable;
