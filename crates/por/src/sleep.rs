//! Sleep sets.
//!
//! A sleep set holds schedule choices that are provably redundant at a
//! state: each slept choice was already explored from an ancestor, and
//! every step on the path since then is independent of it, so any
//! execution starting with the slept choice commutes — step by step — into
//! one that was (or will be) explored on the sibling branch. Exploring it
//! again could only re-derive known states.
//!
//! Entries carry the [`Footprint`] the choice had when it went to sleep.
//! Footprints of pending choices are state-dependent (a CAS flips between
//! read-like and write-like with the cell's contents), but the *only*
//! steps that can change a choice's footprint are steps whose own
//! footprint conflicts with it — and those wake (remove) the entry via
//! [`SleepSet::inherit`]. A surviving entry therefore still denotes the
//! same transition it did when it was put to sleep.

use wbmem::{Footprint, MemoryModel, SchedElem};

/// An ordered set of `(choice, footprint)` pairs; see the module docs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SleepSet {
    /// Sorted by [`key`] so membership and subset tests are cheap; the
    /// sets stay tiny (bounded by a state's out-degree).
    entries: Vec<(SchedElem, Footprint)>,
}

/// Total order on schedule elements (process, then crash flag, then
/// commit register with `⊥` last).
fn key(e: SchedElem) -> (u32, u8, u32, u32) {
    let (has_reg, reg) = match e.reg {
        Some(r) => (0, r.0),
        None => (1, 0),
    };
    (e.proc.0, u8::from(e.crash), has_reg, reg)
}

impl SleepSet {
    /// The empty sleep set (used at the root).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `elem` is asleep.
    #[must_use]
    pub fn contains(&self, elem: SchedElem) -> bool {
        self.entries
            .binary_search_by_key(&key(elem), |&(e, _)| key(e))
            .is_ok()
    }

    /// Put `elem` (with the footprint it has right now) to sleep.
    /// Re-inserting an element replaces its stored footprint.
    pub fn insert(&mut self, elem: SchedElem, fp: Footprint) {
        match self
            .entries
            .binary_search_by_key(&key(elem), |&(e, _)| key(e))
        {
            Ok(i) => self.entries[i].1 = fp,
            Err(i) => self.entries.insert(i, (elem, fp)),
        }
    }

    /// The sleep set a child state inherits after taking a step with
    /// footprint `step`: every entry independent of the step survives,
    /// every dependent entry wakes.
    #[must_use]
    pub fn inherit(&self, step: Footprint, model: MemoryModel) -> SleepSet {
        SleepSet {
            entries: self
                .entries
                .iter()
                .filter(|&&(_, fp)| fp.independent(step, model))
                .copied()
                .collect(),
        }
    }

    /// Whether every entry of `self` (element *and* footprint) appears in
    /// `other`. A visit recorded with sleep set `Z` covers a later arrival
    /// with sleep set `Z' ⊇ Z`: the earlier visit explored a superset of
    /// the choices the later one would.
    #[must_use]
    pub fn is_subset_of(&self, other: &SleepSet) -> bool {
        // Both sides are sorted by the same key; walk them in lockstep.
        let mut it = other.entries.iter();
        'outer: for mine in &self.entries {
            for theirs in it.by_ref() {
                if key(theirs.0) == key(mine.0) {
                    if theirs.1 != mine.1 {
                        return false;
                    }
                    continue 'outer;
                }
                if key(theirs.0) > key(mine.0) {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Number of slept choices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is asleep.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(choice, footprint-at-sleep-time)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SchedElem, Footprint)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbmem::{FootprintKind, ProcId, RegId};

    fn fp(p: u32, kind: FootprintKind) -> Footprint {
        Footprint {
            proc: ProcId(p),
            kind,
        }
    }

    #[test]
    fn insert_contains_and_order() {
        let mut z = SleepSet::new();
        assert!(z.is_empty());
        z.insert(SchedElem::op(ProcId(1)), fp(1, FootprintKind::Local));
        z.insert(
            SchedElem::commit(ProcId(0), RegId(3)),
            fp(0, FootprintKind::Commit(RegId(3))),
        );
        z.insert(SchedElem::crash(ProcId(0)), fp(0, FootprintKind::Local));
        assert_eq!(z.len(), 3);
        assert!(z.contains(SchedElem::op(ProcId(1))));
        assert!(z.contains(SchedElem::commit(ProcId(0), RegId(3))));
        assert!(!z.contains(SchedElem::commit(ProcId(0), RegId(4))));
        assert!(!z.contains(SchedElem::op(ProcId(0))));
        let keys: Vec<_> = z.iter().map(|(e, _)| key(e)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "entries stay sorted");
    }

    #[test]
    fn inherit_wakes_conflicting_entries() {
        let mut z = SleepSet::new();
        z.insert(
            SchedElem::commit(ProcId(0), RegId(1)),
            fp(0, FootprintKind::Commit(RegId(1))),
        );
        z.insert(
            SchedElem::op(ProcId(1)),
            fp(1, FootprintKind::Read(RegId(2))),
        );
        // A commit to reg 2 by proc 2 conflicts with the slept read of reg
        // 2 but not with the slept commit of reg 1.
        let step = fp(2, FootprintKind::Commit(RegId(2)));
        let child = z.inherit(step, wbmem::MemoryModel::Pso);
        assert!(child.contains(SchedElem::commit(ProcId(0), RegId(1))));
        assert!(!child.contains(SchedElem::op(ProcId(1))), "read woke up");
    }

    #[test]
    fn subset_requires_matching_footprints() {
        let mut small = SleepSet::new();
        small.insert(
            SchedElem::op(ProcId(0)),
            fp(0, FootprintKind::Read(RegId(5))),
        );
        let mut big = small.clone();
        big.insert(SchedElem::op(ProcId(1)), fp(1, FootprintKind::Local));
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(SleepSet::new().is_subset_of(&small));

        // Same element, different footprint: not a subset.
        let mut other = SleepSet::new();
        other.insert(
            SchedElem::op(ProcId(0)),
            fp(0, FootprintKind::Write(RegId(5))),
        );
        assert!(!small.is_subset_of(&other));
        assert!(!other.is_subset_of(&small));
    }

    #[test]
    fn reinsert_replaces_the_footprint() {
        let mut z = SleepSet::new();
        z.insert(
            SchedElem::op(ProcId(0)),
            fp(0, FootprintKind::Read(RegId(1))),
        );
        z.insert(
            SchedElem::op(ProcId(0)),
            fp(0, FootprintKind::Write(RegId(1))),
        );
        assert_eq!(z.len(), 1);
        let (_, stored) = z.iter().next().unwrap();
        assert_eq!(stored.kind, FootprintKind::Write(RegId(1)));
    }
}
