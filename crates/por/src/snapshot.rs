//! Durable checkpoints: a versioned, checksummed snapshot of an
//! interrupted exploration.
//!
//! A budgeted or interrupted run dies holding exactly three things worth
//! keeping: the *frontier* (the unexplored remainders of its DFS frames,
//! already serializable as [`ForkPoint`]s — the same continuation
//! relocation the work-stealing engine trades between threads), the
//! *visited set* (fingerprints of states already counted and checked),
//! and the *bookkeeping* a final verdict needs (deterministic metric
//! counts, the termination edge graph). [`Snapshot`] packages those plus
//! run metadata (engine label, configuration hash, program hash) so a
//! later process can refuse to resume against the wrong program or
//! configuration instead of silently producing garbage.
//!
//! ## On-disk format
//!
//! Little-endian binary: a fixed header — magic `FTCKPT`, format
//! version, payload length, FNV-1a-64 checksum of the payload — followed
//! by the payload. The reader validates in order: magic, version,
//! length, checksum; only then does it decode. Every failure is a typed
//! [`SnapshotError`]; a torn or bit-flipped file is *rejected*, never
//! half-loaded.
//!
//! ## Atomic writes
//!
//! [`Snapshot::write_atomic`] writes to a temporary file in the target
//! directory, `fsync`s it, and `rename`s it over the destination (then
//! best-effort-syncs the directory). POSIX rename is atomic, so a crash
//! — even `kill -9` mid-write — leaves either the old checkpoint or the
//! new one, never a readable-but-torn hybrid. The checksum is belt and
//! suspenders on top: if a filesystem reorders the rename past the data
//! sync, the stale bytes fail validation instead of resuming corrupt.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use ftobs::{Gauge, Metric, MetricsSnapshot, Phase, ProcSteps, HIST_BUCKETS, MAX_PROCS};
use wbmem::{Footprint, FootprintKind, ProcId, RegId, SchedElem};

use crate::fork::ForkPoint;
use crate::sleep::SleepSet;

/// File magic, first bytes of every checkpoint.
pub const MAGIC: [u8; 6] = *b"FTCKPT";

/// Current format version. Readers reject any other version (the format
/// embeds the metric taxonomy's array sizes, so it changes whenever the
/// taxonomy does — v2 added the fence-synthesis counters; v3 added the
/// trace counters and the fork points' causal span ids; v4 added the
/// fleet supervision counters).
pub const VERSION: u32 = 4;

/// Why a checkpoint could not be written or read back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Underlying I/O failure (message carries the OS error; the error
    /// itself is not kept because `io::Error` is neither `Clone` nor
    /// `PartialEq`).
    Io(String),
    /// The file does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The file's format version is not [`VERSION`].
    BadVersion(u32),
    /// The file is shorter than its header claims (torn write).
    Truncated,
    /// The payload checksum does not match (bit rot or a torn write that
    /// happened to preserve the length).
    ChecksumMismatch,
    /// The payload decoded inconsistently (which field broke).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            SnapshotError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {VERSION})")
            }
            SnapshotError::Truncated => write!(f, "checkpoint file is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "checkpoint payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Identity of the run a checkpoint belongs to. A resume validates all
/// three fields before touching the frontier: the engine label (frontier
/// semantics differ per engine), a hash of the checking configuration
/// (properties, crash budget, reorder bound), and a hash of the program's
/// initial state (resuming lock A's frontier on lock B would silently
/// verify neither).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// `Engine::label()` of the interrupted run.
    pub engine: String,
    /// Hash of the check configuration (computed by the checker).
    pub config_hash: u64,
    /// Fingerprint of the root state, crash bound applied.
    pub program_hash: u128,
}

/// The scalar exploration counts accumulated before the interrupt; a
/// resumed run adds its own on top.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaseCounts {
    /// Distinct states visited (and property-checked) so far.
    pub states: u64,
    /// Transitions executed so far.
    pub transitions: u64,
    /// Terminal (all-done) states found so far.
    pub terminal_states: u64,
    /// Sleep-set/ample suppressions so far (DPOR engines).
    pub sleep_hits: u64,
}

/// Everything an interrupted exploration needs to continue elsewhere;
/// see the module docs.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Run identity, validated on resume.
    pub meta: RunMeta,
    /// Counts accumulated before the interrupt.
    pub base: BaseCounts,
    /// Metrics accumulated before the interrupt; a resume merges its own
    /// snapshot into this, and the deterministic counters sum to the
    /// uninterrupted run's because the executed step multiset partitions
    /// exactly between the two runs.
    pub metrics: MetricsSnapshot,
    /// The unexplored frontier, as replayable continuations.
    pub forks: Vec<ForkPoint>,
    /// Fingerprints of every state already counted, sorted (the export
    /// is shard-order-independent). Pre-seeding the resumed run's table
    /// with these keeps states counted exactly once across both runs.
    pub visited: Vec<u128>,
    /// Fingerprint-keyed transition edges seen so far (collected only
    /// when the termination check is on; the resumed run merges them
    /// with its own before the reverse-reachability pass).
    pub edges: Vec<(u128, u128)>,
    /// Fingerprints of the terminal states found so far (again only
    /// meaningful under the termination check).
    pub terminals: Vec<u128>,
}

// --- encoding primitives -------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn elem(&mut self, e: SchedElem) {
        self.u32(e.proc.0);
        match e.reg {
            Some(r) => {
                self.u8(1);
                self.u32(r.0);
            }
            None => {
                self.u8(0);
                self.u32(0);
            }
        }
        self.u8(u8::from(e.crash));
    }
    fn footprint(&mut self, fp: Footprint) {
        self.u32(fp.proc.0);
        match fp.kind {
            FootprintKind::Local => {
                self.u8(0);
                self.u32(0);
            }
            FootprintKind::Read(r) => {
                self.u8(1);
                self.u32(r.0);
            }
            FootprintKind::Write(r) => {
                self.u8(2);
                self.u32(r.0);
            }
            FootprintKind::Commit(r) => {
                self.u8(3);
                self.u32(r.0);
            }
            FootprintKind::Return => {
                self.u8(4);
                self.u32(0);
            }
            FootprintKind::Crash { drains } => {
                self.u8(5);
                self.u32(u32::from(drains));
            }
        }
    }
    fn elems(&mut self, es: &[SchedElem]) {
        self.u32(es.len() as u32);
        for &e in es {
            self.elem(e);
        }
    }
    fn pairs(&mut self, len: usize, ps: impl Iterator<Item = (SchedElem, Footprint)>) {
        self.u32(len as u32);
        for (e, fp) in ps {
            self.elem(e);
            self.footprint(fp);
        }
    }
    fn u64s(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u64(v);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Corrupt("unexpected end of payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        if n > 1 << 16 {
            return Err(SnapshotError::Corrupt("string length"));
        }
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| SnapshotError::Corrupt("string encoding"))
    }
    /// Guard a claimed element count against the bytes actually left, so
    /// a corrupt length prefix fails fast instead of attempting a huge
    /// allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.buf.len() - self.pos {
            return Err(SnapshotError::Corrupt("length prefix"));
        }
        Ok(n)
    }
    fn elem(&mut self) -> Result<SchedElem, SnapshotError> {
        let proc = ProcId(self.u32()?);
        let has_reg = self.u8()?;
        let reg = self.u32()?;
        let crash = self.u8()?;
        if has_reg > 1 || crash > 1 {
            return Err(SnapshotError::Corrupt("schedule element flags"));
        }
        Ok(SchedElem {
            proc,
            reg: (has_reg == 1).then_some(RegId(reg)),
            crash: crash == 1,
        })
    }
    fn footprint(&mut self) -> Result<Footprint, SnapshotError> {
        let proc = ProcId(self.u32()?);
        let tag = self.u8()?;
        let arg = self.u32()?;
        let kind = match tag {
            0 => FootprintKind::Local,
            1 => FootprintKind::Read(RegId(arg)),
            2 => FootprintKind::Write(RegId(arg)),
            3 => FootprintKind::Commit(RegId(arg)),
            4 => FootprintKind::Return,
            5 => FootprintKind::Crash { drains: arg == 1 },
            _ => return Err(SnapshotError::Corrupt("footprint kind")),
        };
        Ok(Footprint { proc, kind })
    }
    fn elems(&mut self) -> Result<Vec<SchedElem>, SnapshotError> {
        let n = self.count(10)?;
        (0..n).map(|_| self.elem()).collect()
    }
    fn pairs(&mut self) -> Result<Vec<(SchedElem, Footprint)>, SnapshotError> {
        let n = self.count(19)?;
        (0..n)
            .map(|_| Ok((self.elem()?, self.footprint()?)))
            .collect()
    }
    fn u64s_exact(&mut self, expect: usize, what: &'static str) -> Result<Vec<u64>, SnapshotError> {
        let n = self.count(8)?;
        if n != expect {
            return Err(SnapshotError::Corrupt(what));
        }
        (0..n).map(|_| self.u64()).collect()
    }
}

/// FNV-1a over the payload: dependency-free, and plenty against torn
/// writes and bit rot (adversarial corruption is out of scope — the
/// checkpoint sits next to the checker's own binary). Public so the
/// fleet's lease/result wire format checksums with the same function.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn enc_metrics(e: &mut Enc, m: &MetricsSnapshot) {
    e.u64s(&m.counters);
    e.u32(m.per_proc.len() as u32);
    for p in &m.per_proc {
        e.u64(p.fences);
        e.u64(p.rmrs);
        e.u64(p.crashes);
    }
    e.u64s(&m.buffer_depth.buckets);
    e.u64s(&m.frame_depth.buckets);
    e.u64s(&m.gauges);
    e.u64s(&m.span_ns);
    e.u64s(&m.span_count);
}

fn dec_metrics(d: &mut Dec<'_>) -> Result<MetricsSnapshot, SnapshotError> {
    let mut m = MetricsSnapshot::default();
    let counters = d.u64s_exact(Metric::COUNT, "metric counter count")?;
    m.counters.copy_from_slice(&counters);
    let np = d.count(24)?;
    if np != MAX_PROCS {
        return Err(SnapshotError::Corrupt("per-proc slot count"));
    }
    for p in &mut m.per_proc {
        *p = ProcSteps {
            fences: d.u64()?,
            rmrs: d.u64()?,
            crashes: d.u64()?,
        };
    }
    m.buffer_depth
        .buckets
        .copy_from_slice(&d.u64s_exact(HIST_BUCKETS, "histogram bucket count")?);
    m.frame_depth
        .buckets
        .copy_from_slice(&d.u64s_exact(HIST_BUCKETS, "histogram bucket count")?);
    m.gauges
        .copy_from_slice(&d.u64s_exact(Gauge::COUNT, "gauge count")?);
    m.span_ns
        .copy_from_slice(&d.u64s_exact(Phase::COUNT, "span count")?);
    m.span_count
        .copy_from_slice(&d.u64s_exact(Phase::COUNT, "span count")?);
    Ok(m)
}

impl Snapshot {
    /// Serialize to the on-disk byte format (header + payload).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc { buf: Vec::new() };
        e.str(&self.meta.engine);
        e.u64(self.meta.config_hash);
        e.u128(self.meta.program_hash);
        e.u64(self.base.states);
        e.u64(self.base.transitions);
        e.u64(self.base.terminal_states);
        e.u64(self.base.sleep_hits);
        enc_metrics(&mut e, &self.metrics);
        e.u32(self.forks.len() as u32);
        for f in &self.forks {
            e.elems(&f.path);
            e.pairs(f.sleep.len(), f.sleep.iter());
            e.pairs(f.taken.len(), f.taken.iter().copied());
            e.elems(&f.choices);
            e.elems(&f.excluded);
            e.u32(f.remaining);
            e.u64(f.span);
        }
        e.u64(self.visited.len() as u64);
        for &fp in &self.visited {
            e.u128(fp);
        }
        e.u64(self.edges.len() as u64);
        for &(a, b) in &self.edges {
            e.u128(a);
            e.u128(b);
        }
        e.u64(self.terminals.len() as u64);
        for &t in &self.terminals {
            e.u128(t);
        }

        let payload = e.buf;
        let mut out = Vec::with_capacity(payload.len() + 26);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode from the on-disk byte format, validating magic, version,
    /// length, and checksum before touching the payload.
    ///
    /// # Errors
    ///
    /// Any validation or decode failure, as a typed [`SnapshotError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < MAGIC.len() {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let rest = &bytes[MAGIC.len()..];
        if rest.len() < 20 {
            return Err(SnapshotError::Truncated);
        }
        let version = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let payload_len = u64::from_le_bytes(rest[4..12].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(rest[12..20].try_into().unwrap());
        let payload = &rest[20..];
        if payload.len() != payload_len {
            return Err(SnapshotError::Truncated);
        }
        if fnv1a(payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut d = Dec {
            buf: payload,
            pos: 0,
        };
        let engine = d.str()?;
        let config_hash = d.u64()?;
        let program_hash = d.u128()?;
        let base = BaseCounts {
            states: d.u64()?,
            transitions: d.u64()?,
            terminal_states: d.u64()?,
            sleep_hits: d.u64()?,
        };
        let metrics = dec_metrics(&mut d)?;
        let nforks = d.count(26)?;
        let mut forks = Vec::with_capacity(nforks);
        for _ in 0..nforks {
            let path = d.elems()?;
            let mut sleep = SleepSet::new();
            for (e, fp) in d.pairs()? {
                sleep.insert(e, fp);
            }
            let taken = d.pairs()?;
            let choices = d.elems()?;
            let excluded = d.elems()?;
            let remaining = d.u32()?;
            let span = d.u64()?;
            forks.push(ForkPoint {
                path,
                sleep,
                taken,
                choices,
                excluded,
                remaining,
                span,
            });
        }
        let nv = d.u64()? as usize;
        if nv.saturating_mul(16) > payload.len() - d.pos {
            return Err(SnapshotError::Corrupt("visited count"));
        }
        let visited = (0..nv).map(|_| d.u128()).collect::<Result<Vec<_>, _>>()?;
        let ne = d.u64()? as usize;
        if ne.saturating_mul(32) > payload.len() - d.pos {
            return Err(SnapshotError::Corrupt("edge count"));
        }
        let edges = (0..ne)
            .map(|_| Ok((d.u128()?, d.u128()?)))
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let nt = d.u64()? as usize;
        if nt.saturating_mul(16) > payload.len() - d.pos {
            return Err(SnapshotError::Corrupt("terminal count"));
        }
        let terminals = (0..nt).map(|_| d.u128()).collect::<Result<Vec<_>, _>>()?;
        if d.pos != payload.len() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(Snapshot {
            meta: RunMeta {
                engine,
                config_hash,
                program_hash,
            },
            base,
            metrics,
            forks,
            visited,
            edges,
            terminals,
        })
    }

    /// Write the snapshot to `path` atomically: temp file in the same
    /// directory, `fsync`, `rename`, best-effort directory sync. Returns
    /// the byte size written. A crash at any point leaves `path` either
    /// absent, the previous checkpoint, or the complete new one.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] with the failing operation's message.
    pub fn write_atomic(&self, path: &Path) -> Result<u64, SnapshotError> {
        let bytes = self.to_bytes();
        let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
        if let Some(dir) = dir {
            fs::create_dir_all(dir).map_err(|e| SnapshotError::Io(format!("mkdir: {e}")))?;
        }
        let file_name = path
            .file_name()
            .ok_or_else(|| SnapshotError::Io("checkpoint path has no file name".into()))?;
        let mut tmp = path.to_path_buf();
        tmp.set_file_name({
            let mut n = std::ffi::OsString::from(".");
            n.push(file_name);
            n.push(".tmp");
            n
        });
        let mut f =
            fs::File::create(&tmp).map_err(|e| SnapshotError::Io(format!("create temp: {e}")))?;
        f.write_all(&bytes)
            .map_err(|e| SnapshotError::Io(format!("write: {e}")))?;
        f.sync_all()
            .map_err(|e| SnapshotError::Io(format!("fsync: {e}")))?;
        drop(f);
        fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(format!("rename: {e}")))?;
        // Make the rename itself durable where the platform allows
        // opening a directory; failure here cannot tear the file, only
        // delay its durability, so it is not fatal.
        if let Some(dir) = dir {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(bytes.len() as u64)
    }

    /// Read and validate a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be read; otherwise any
    /// validation error from [`Snapshot::from_bytes`].
    pub fn read(path: &Path) -> Result<Snapshot, SnapshotError> {
        let bytes = fs::read(path).map_err(|e| SnapshotError::Io(format!("read: {e}")))?;
        Snapshot::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut sleep = SleepSet::new();
        sleep.insert(
            SchedElem::op(ProcId(1)),
            Footprint {
                proc: ProcId(1),
                kind: FootprintKind::Read(RegId(2)),
            },
        );
        let mut metrics = MetricsSnapshot::default();
        metrics.counters[Metric::States as usize] = 41;
        metrics.counters[Metric::Fences as usize] = 7;
        metrics.per_proc[1].fences = 7;
        metrics.buffer_depth.buckets[2] = 5;
        metrics.gauges[Gauge::MaxFrontier as usize] = 12;
        Snapshot {
            meta: RunMeta {
                engine: "dpor".into(),
                config_hash: 0xdead_beef,
                program_hash: 0x1234_5678_9abc_def0_1111_2222_3333_4444,
            },
            base: BaseCounts {
                states: 41,
                transitions: 97,
                terminal_states: 3,
                sleep_hits: 11,
            },
            metrics,
            forks: vec![ForkPoint {
                path: vec![
                    SchedElem::op(ProcId(0)),
                    SchedElem::commit(ProcId(0), RegId(3)),
                    SchedElem::crash(ProcId(1)),
                ],
                sleep,
                taken: vec![(
                    SchedElem::op(ProcId(0)),
                    Footprint {
                        proc: ProcId(0),
                        kind: FootprintKind::Crash { drains: true },
                    },
                )],
                choices: vec![SchedElem::op(ProcId(1)), SchedElem::op(ProcId(0))],
                excluded: vec![SchedElem::commit(ProcId(1), RegId(0))],
                remaining: 5,
                span: 77,
            }],
            visited: vec![0, 1, u128::MAX, 0x42 << 64],
            edges: vec![(0, 1), (1, u128::MAX)],
            terminals: vec![u128::MAX],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample();
        let got = Snapshot::from_bytes(&s.to_bytes()).expect("roundtrip");
        assert_eq!(got.meta, s.meta);
        assert_eq!(got.base, s.base);
        assert_eq!(got.visited, s.visited);
        assert_eq!(got.edges, s.edges);
        assert_eq!(got.terminals, s.terminals);
        assert_eq!(got.forks.len(), 1);
        let (a, b) = (&got.forks[0], &s.forks[0]);
        assert_eq!(a.path, b.path);
        assert_eq!(a.sleep, b.sleep);
        assert_eq!(a.taken, b.taken);
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.excluded, b.excluded);
        assert_eq!(a.remaining, b.remaining);
        assert_eq!(a.span, b.span);
        // Full (not just deterministic-projection) metric equality.
        assert_eq!(got.metrics.counters, s.metrics.counters);
        assert_eq!(got.metrics.gauges, s.metrics.gauges);
        assert_eq!(got.metrics.buffer_depth, s.metrics.buffer_depth);
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = sample().to_bytes();
        for cut in [0, 3, 6, 9, 17, 25, bytes.len() / 2, bytes.len() - 1] {
            let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let clean = sample().to_bytes();
        // Flip one byte in the payload: checksum catches it.
        let mut torn = clean.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x40;
        assert_eq!(
            Snapshot::from_bytes(&torn).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
        // Flip the stored checksum itself: also a mismatch.
        let mut badsum = clean.clone();
        badsum[MAGIC.len() + 12] ^= 1;
        assert_eq!(
            Snapshot::from_bytes(&badsum).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
        // Wrong magic and wrong version are typed separately.
        let mut magic = clean.clone();
        magic[0] ^= 1;
        assert_eq!(
            Snapshot::from_bytes(&magic).unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut ver = clean;
        ver[MAGIC.len()] = 99;
        assert_eq!(
            Snapshot::from_bytes(&ver).unwrap_err(),
            SnapshotError::BadVersion(99)
        );
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("ft_snap_test_{}", std::process::id()));
        let path = dir.join("ckpt.ftc");
        let s = sample();
        let bytes = s.write_atomic(&path).expect("write");
        assert_eq!(bytes, s.to_bytes().len() as u64);
        let got = Snapshot::read(&path).expect("read back");
        assert_eq!(got.meta, s.meta);
        assert_eq!(got.visited, s.visited);
        // Overwrite with a different snapshot: reader sees the new one.
        let mut s2 = s.clone();
        s2.base.states = 1000;
        s2.write_atomic(&path).expect("overwrite");
        assert_eq!(Snapshot::read(&path).expect("reread").base.states, 1000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let s = Snapshot::default();
        let got = Snapshot::from_bytes(&s.to_bytes()).expect("roundtrip");
        assert!(got.forks.is_empty());
        assert!(got.visited.is_empty());
        assert_eq!(got.meta.engine, "");
    }
}
