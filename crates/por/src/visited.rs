//! The reduced search's visited table.
//!
//! Plain stateful search caches states by fingerprint and never re-enters
//! one. Under sleep sets that rule is unsound: a state first reached with
//! a large sleep set was only *partially* expanded, so reaching it again
//! with a smaller (or incomparable) sleep set must re-explore the choices
//! the first visit slept through. The classical fix (Godefroid) is kept
//! here: a visit is redundant iff some recorded visit used a sleep set
//! that is a **subset** of the current one.
//!
//! The optional reorder bound adds a second dominance axis: a state
//! explored with more remaining budget has seen everything a poorer
//! arrival could reach. The combined rule: an arrival is *dominated* —
//! skipped — iff some recorded visit had `sleep ⊆ current.sleep` **and**
//! `remaining ≥ current.remaining`.

use std::collections::HashMap;

use crate::sleep::SleepSet;

/// One recorded exploration of a state.
#[derive(Clone, Debug)]
struct VisitEntry {
    sleep: SleepSet,
    remaining: u32,
}

/// Fingerprint-keyed visit records with sleep-set/budget dominance.
#[derive(Debug, Default)]
pub struct VisitTable {
    map: HashMap<u128, Vec<VisitEntry>>,
}

impl VisitTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the state `fp`, reached with `sleep` and `remaining` reorder
    /// budget, must be (re)explored. Claiming records the visit and prunes
    /// recorded visits the new one dominates, so the per-state list stays
    /// an antichain.
    pub fn try_claim(&mut self, fp: u128, sleep: &SleepSet, remaining: u32) -> bool {
        let entries = self.map.entry(fp).or_default();
        if entries
            .iter()
            .any(|e| e.remaining >= remaining && e.sleep.is_subset_of(sleep))
        {
            return false;
        }
        entries.retain(|e| !(remaining >= e.remaining && sleep.is_subset_of(&e.sleep)));
        entries.push(VisitEntry {
            sleep: sleep.clone(),
            remaining,
        });
        true
    }

    /// Whether `fp` has been explored at least once (under any sleep set).
    #[must_use]
    pub fn seen(&self, fp: u128) -> bool {
        self.map.contains_key(&fp)
    }

    /// Number of distinct states explored at least once.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no state has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total recorded visits, across all states (≥ [`len`](Self::len);
    /// the excess measures re-exploration forced by incomparable sleep
    /// sets or budgets).
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Every fingerprint explored at least once, sorted. A checkpoint
    /// persists only the fingerprints, not the dominance entries: a
    /// resumed run seeds a plain first-visit set from them (sound — it
    /// merely prunes less than the full dominance table would), so the
    /// insertion-order-dependent antichains never need to round-trip.
    #[must_use]
    pub fn fingerprints(&self) -> Vec<u128> {
        let mut fps: Vec<u128> = self.map.keys().copied().collect();
        fps.sort_unstable();
        fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbmem::{Footprint, FootprintKind, ProcId, RegId, SchedElem};

    fn sleeping(elems: &[(u32, u32)]) -> SleepSet {
        let mut z = SleepSet::new();
        for &(p, r) in elems {
            z.insert(
                SchedElem::commit(ProcId(p), RegId(r)),
                Footprint {
                    proc: ProcId(p),
                    kind: FootprintKind::Commit(RegId(r)),
                },
            );
        }
        z
    }

    #[test]
    fn first_visit_claims() {
        let mut t = VisitTable::new();
        assert!(!t.seen(7));
        assert!(t.try_claim(7, &SleepSet::new(), u32::MAX));
        assert!(t.seen(7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn superset_sleep_is_dominated_subset_reexplores() {
        let mut t = VisitTable::new();
        let small = sleeping(&[(0, 1)]);
        let big = sleeping(&[(0, 1), (1, 2)]);
        assert!(t.try_claim(7, &small, u32::MAX));
        assert!(
            !t.try_claim(7, &big, u32::MAX),
            "bigger sleep set explores strictly less: covered"
        );
        assert!(
            t.try_claim(7, &SleepSet::new(), u32::MAX),
            "smaller sleep set explores more: must re-enter"
        );
        // The empty-sleep visit dominates both earlier records.
        assert_eq!(t.total_entries(), 1);
        assert!(!t.try_claim(7, &small, u32::MAX));
    }

    #[test]
    fn richer_budget_reexplores() {
        let mut t = VisitTable::new();
        let z = SleepSet::new();
        assert!(t.try_claim(7, &z, 1));
        assert!(!t.try_claim(7, &z, 1));
        assert!(!t.try_claim(7, &z, 0), "poorer arrival is dominated");
        assert!(t.try_claim(7, &z, 3), "richer arrival must re-enter");
        assert_eq!(t.total_entries(), 1, "richer visit pruned the poorer");
    }

    #[test]
    fn incomparable_entries_coexist() {
        let mut t = VisitTable::new();
        // (more sleep, more budget) vs (less sleep, less budget): neither
        // dominates the other.
        assert!(t.try_claim(7, &sleeping(&[(0, 1)]), 5));
        assert!(t.try_claim(7, &SleepSet::new(), 2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_entries(), 2);
    }
}
