//! Loom-free stress test for the lock-free fingerprint table: N threads
//! hammer overlapping key sets and the table must end up with *exactly*
//! the distinct keys — no lost inserts (a key nobody won), no double
//! wins (two threads both told "fresh"), occupancy equal to the distinct
//! key count. This is the CI gate for the CAS-insert protocol
//! (`scripts/ci.sh` runs it explicitly).

use std::sync::atomic::{AtomicUsize, Ordering};

use por::FpTable;

/// Deterministic pseudo-random permutation of `i` (splitmix64 finalizer)
/// so keys spread over shards and probe windows like real fingerprints.
fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn key(i: u64) -> u128 {
    (u128::from(mix(i)) << 64) | u128::from(mix(i ^ 0xdead_beef))
}

/// Every thread inserts the same M keys (maximum contention: every
/// insert races all peers for the same slots). Exactly one `true` per
/// key must be handed out, and occupancy must equal M.
#[test]
fn all_threads_race_for_identical_keys() {
    let threads = 8;
    let inserts = 20_000u64;
    let table = FpTable::new();
    let wins = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let table = &table;
            let wins = &wins;
            scope.spawn(move || {
                // Different traversal orders per thread widen the race
                // window (threads collide on different keys at a time).
                for i in 0..inserts {
                    let i = if t % 2 == 0 { i } else { inserts - 1 - i };
                    if table.insert(key(i)) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        wins.load(Ordering::Relaxed),
        inserts as usize,
        "exactly one insert per key may report fresh"
    );
    assert_eq!(
        table.len(),
        inserts as usize,
        "final occupancy == distinct keys"
    );
    // Post-race membership: nothing was lost.
    for i in 0..inserts {
        assert!(!table.insert(key(i)), "key {i} lost by the racing inserts");
    }
    assert_eq!(table.len(), inserts as usize);
}

/// Disjoint key ranges with a shared overlap band: checks the mixed
/// regime (mostly uncontended inserts, some contended) and that the
/// global fresh-count equals the distinct-key count.
#[test]
fn overlapping_ranges_count_exactly_once() {
    let threads = 6u64;
    let per_thread = 15_000u64;
    let overlap = 5_000u64; // keys 0..overlap are inserted by everyone
    let table = FpTable::new();
    let wins = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let table = &table;
            let wins = &wins;
            scope.spawn(move || {
                let mut fresh = 0usize;
                for i in 0..per_thread {
                    // First `overlap` iterations hit the shared band,
                    // the rest are thread-private.
                    let k = if i < overlap {
                        key(i)
                    } else {
                        key(1_000_000 + t * per_thread + i)
                    };
                    fresh += usize::from(table.insert(k));
                }
                wins.fetch_add(fresh, Ordering::Relaxed);
            });
        }
    });
    let distinct = (overlap + threads * (per_thread - overlap)) as usize;
    assert_eq!(wins.load(Ordering::Relaxed), distinct);
    assert_eq!(table.len(), distinct);
}

/// Contention counters only ever grow and stay consistent under load
/// (smoke check for the observability wiring).
#[test]
fn contention_counter_is_monotone() {
    let table = FpTable::new();
    for i in 0..1000 {
        table.insert(key(i));
    }
    let c1 = table.contention();
    for i in 0..1000 {
        table.insert(key(i)); // re-probes occupied slots
    }
    assert!(table.contention() >= c1);
}
