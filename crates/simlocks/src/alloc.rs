//! Shared-register allocation with DSM segment assignment.

use wbmem::{MemoryLayout, ProcId, RegId};

/// Hands out contiguous register ids and records which process's memory
/// segment each register lives in. All lock instances participating in one
/// algorithm instance must draw from the same allocator so their address
/// spaces don't collide.
#[derive(Debug, Default)]
pub struct RegAlloc {
    next: u32,
    layout: MemoryLayout,
}

impl RegAlloc {
    /// A fresh allocator starting at register 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate one register, optionally placing it in `owner`'s segment.
    pub fn alloc(&mut self, owner: Option<ProcId>) -> RegId {
        let reg = RegId(self.next);
        self.next = self.next.checked_add(1).expect("register space exhausted");
        if let Some(p) = owner {
            self.layout.assign(reg, p);
        }
        reg
    }

    /// Allocate `len` contiguous registers; `owner(i)` names the segment of
    /// the `i`-th. Returns the base register (element `i` is `base + i`).
    pub fn alloc_array(
        &mut self,
        len: usize,
        mut owner: impl FnMut(usize) -> Option<ProcId>,
    ) -> RegId {
        assert!(len > 0, "zero-length register array");
        let base = RegId(self.next);
        for i in 0..len {
            let _ = self.alloc(owner(i));
        }
        debug_assert_eq!(base.0 + len as u32, self.next);
        base
    }

    /// Number of registers allocated so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.next as usize
    }

    /// Whether nothing has been allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }

    /// A snapshot of the segment layout accumulated so far.
    #[must_use]
    pub fn layout(&self) -> MemoryLayout {
        self.layout.clone()
    }

    /// Consume the allocator, yielding the final layout.
    #[must_use]
    pub fn into_layout(self) -> MemoryLayout {
        self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocation() {
        let mut a = RegAlloc::new();
        assert!(a.is_empty());
        let r0 = a.alloc(None);
        let r1 = a.alloc(Some(ProcId(3)));
        assert_eq!((r0, r1), (RegId(0), RegId(1)));
        assert_eq!(a.len(), 2);
        let layout = a.into_layout();
        assert_eq!(layout.owner(r0), None);
        assert_eq!(layout.owner(r1), Some(ProcId(3)));
    }

    #[test]
    fn arrays_are_contiguous_with_per_slot_owners() {
        let mut a = RegAlloc::new();
        let _pad = a.alloc(None);
        let base = a.alloc_array(3, |i| Some(ProcId::from(i)));
        assert_eq!(base, RegId(1));
        assert_eq!(a.len(), 4);
        let layout = a.layout();
        for i in 0..3u32 {
            assert_eq!(layout.owner(RegId(base.0 + i)), Some(ProcId(i)));
        }
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_array_rejected() {
        RegAlloc::new().alloc_array(0, |_| None);
    }
}
