//! Lamport's Bakery lock — Algorithm 1 of the paper.
//!
//! Per passage: a **constant** number of fences (three in acquire, one in
//! release) and a **linear** number of RMRs (the doorway scans every
//! process's ticket and the wait loop reads every process's `C` and `T`).
//! This is the `f = 1` extreme of the fence/RMR tradeoff: with O(1) fences,
//! the lower bound forces Ω(n) RMRs, and Bakery meets it.
//!
//! ```text
//! Acquire(i):                       // fence sites
//!   write(C[i], 1); fence           // 0  (doorway open)
//!   tmp := 1 + max{T[0..n-1]}
//!   write(T[i], tmp); fence         // 2  (ticket published)
//!   write(C[i], 0); fence           // 1  (doorway closed)
//!   for j != i:
//!     wait until C[j] == 0
//!     wait until T[j] == 0 or (tmp, i) < (T[j], j)
//! Release(i):
//!   write(T[i], 0); fence           // 3
//! ```
//!
//! The algorithm orders its writes explicitly with fences, so it is correct
//! under every memory model including RMO (the paper notes this).
//!
//! ## Deviation from the paper's listing
//!
//! The paper's Algorithm 1 prints the doorway as `write(C[i], 0); fence`
//! (line 6) **followed by** `write(T[i], tmp); fence` (line 7) — inverted
//! relative to Lamport's original, where the ticket is published while the
//! choosing flag is still raised. The printed order is unsafe even under
//! sequential consistency: a rival that was held up on `C[i] == 1` can pass
//! the check in the window after the door closes but before the ticket
//! lands, read `T[i] = 0`, and enter the critical section alongside `i`
//! (who later draws a tied ticket and wins the id tie-break). Our model
//! checker finds this violation mechanically. We therefore implement
//! Lamport's order by default and keep the paper's printed order available
//! via [`Bakery::with_paper_listing_order`] so experiment E5 can exhibit
//! the counterexample.

use fencevm::{Asm, CondOp};
use wbmem::ProcId;

use crate::alloc::RegAlloc;
use crate::fences::FenceMask;
use crate::lock::LockAlgorithm;

/// Fence site after `write(C[i], 1)`.
pub const SITE_DOOR_OPEN: u32 = 0;
/// Fence site after `write(C[i], 0)`.
pub const SITE_DOOR_CLOSE: u32 = 1;
/// Fence site after `write(T[i], ticket)`.
pub const SITE_TICKET: u32 = 2;
/// Fence site after the release write `write(T[i], 0)`.
pub const SITE_RELEASE: u32 = 3;

/// A Bakery lock instance for `n` competitor slots.
///
/// "Slots" rather than "processes": inside a [`GtLock`](crate::GtLock) tree
/// a Bakery node is time-shared by the winners of its subtrees, with the
/// subtree index as the slot.
#[derive(Clone, Debug)]
pub struct Bakery {
    n: usize,
    c_base: i64,
    t_base: i64,
    fences: FenceMask,
    paper_listing_order: bool,
}

impl Bakery {
    /// Allocate a Bakery instance for `n` slots. `slot_owner(s)` names the
    /// process in whose memory segment slot `s`'s registers (`C[s]`,
    /// `T[s]`) are placed — the natural choice when slot `s` is statically
    /// bound to one process, `None` for shared tree nodes.
    pub fn new(
        alloc: &mut RegAlloc,
        n: usize,
        mut slot_owner: impl FnMut(usize) -> Option<ProcId>,
        fences: FenceMask,
    ) -> Self {
        assert!(n >= 1, "bakery needs at least one slot");
        let c_base = alloc.alloc_array(n, &mut slot_owner);
        let t_base = alloc.alloc_array(n, &mut slot_owner);
        Bakery {
            n,
            c_base: i64::from(c_base.0),
            t_base: i64::from(t_base.0),
            fences,
            paper_listing_order: false,
        }
    }

    /// Use the write order exactly as printed in the paper's Algorithm 1
    /// (`C[i] := 0` before `T[i] := tmp`). **Unsafe even under SC** — see
    /// the module docs; provided so the counterexample can be regenerated.
    #[must_use]
    pub fn with_paper_listing_order(mut self) -> Self {
        self.paper_listing_order = true;
        self
    }

    /// Emit the acquire section for `slot` (may differ from the global
    /// process id inside tree locks).
    pub fn emit_acquire_slot(&self, asm: &mut Asm, slot: usize) {
        assert!(
            slot < self.n,
            "slot {slot} out of range for bakery[{}]",
            self.n
        );
        let n = self.n as i64;
        let slot_i = slot as i64;
        let tmp = asm.local("bak_tmp");
        let j = asm.local("bak_j");
        let addr = asm.local("bak_addr");
        let t = asm.local("bak_t");

        // Doorway: C[slot] := 1.
        asm.write(self.c_base + slot_i, 1i64);
        self.fences.emit(asm, SITE_DOOR_OPEN);

        // tmp := 1 + max{T[0..n-1]}  (own slot included, as in the paper).
        asm.mov(tmp, 1i64);
        asm.mov(j, 0i64);
        let scan_end = asm.label();
        let scan = asm.here();
        asm.jmp_if(CondOp::Ge, j, n, scan_end);
        asm.add(addr, j, self.t_base);
        asm.read(addr, t);
        asm.add(t, t, 1i64);
        asm.max(tmp, tmp, t);
        asm.add(j, j, 1i64);
        asm.jmp(scan);
        asm.bind(scan_end);

        if self.paper_listing_order {
            // The paper's printed (broken) order: close the doorway before
            // publishing the ticket.
            asm.write(self.c_base + slot_i, 0i64);
            self.fences.emit(asm, SITE_DOOR_CLOSE);
            asm.write(self.t_base + slot_i, tmp);
            self.fences.emit(asm, SITE_TICKET);
        } else {
            // Lamport's order: the ticket lands while the door is open.
            asm.write(self.t_base + slot_i, tmp);
            self.fences.emit(asm, SITE_TICKET);
            asm.write(self.c_base + slot_i, 0i64);
            self.fences.emit(asm, SITE_DOOR_CLOSE);
        }

        // Wait loop over every other slot.
        asm.mov(j, 0i64);
        let wait_end = asm.label();
        let wait = asm.here();
        asm.jmp_if(CondOp::Ge, j, n, wait_end);
        let next = asm.label();
        asm.jmp_if(CondOp::Eq, j, slot_i, next);

        // wait until C[j] == 0
        let spin_c = asm.here();
        asm.add(addr, j, self.c_base);
        asm.read(addr, t);
        asm.jmp_if(CondOp::Ne, t, 0i64, spin_c);

        // wait until T[j] == 0 or (tmp, slot) < (T[j], j)
        let spin_t = asm.here();
        asm.add(addr, j, self.t_base);
        asm.read(addr, t);
        asm.jmp_if(CondOp::Eq, t, 0i64, next);
        asm.jmp_if(CondOp::Lt, tmp, t, next);
        asm.jmp_if(CondOp::Gt, tmp, t, spin_t);
        // Equal tickets: the smaller slot id goes first.
        asm.jmp_if(CondOp::Lt, slot_i, j, next);
        asm.jmp(spin_t);

        asm.bind(next);
        asm.add(j, j, 1i64);
        asm.jmp(wait);
        asm.bind(wait_end);
    }

    /// Emit the release section for `slot`.
    pub fn emit_release_slot(&self, asm: &mut Asm, slot: usize) {
        assert!(
            slot < self.n,
            "slot {slot} out of range for bakery[{}]",
            self.n
        );
        asm.write(self.t_base + slot as i64, 0i64);
        self.fences.emit(asm, SITE_RELEASE);
    }

    /// Emit the crash-recovery section for `slot`: retract both shared
    /// announcements (`C[slot]`, `T[slot]`) with explicit fences, so
    /// rivals never keep waiting on a ticket whose owner crashed — the
    /// building block of [`RecoverableBakery`]'s crash recovery.
    ///
    /// [`RecoverableBakery`]: crate::RecoverableBakery
    pub fn emit_recovery_slot(&self, asm: &mut Asm, slot: usize) {
        assert!(
            slot < self.n,
            "slot {slot} out of range for bakery[{}]",
            self.n
        );
        asm.write(self.c_base + slot as i64, 0i64);
        asm.fence();
        asm.write(self.t_base + slot as i64, 0i64);
        asm.fence();
    }

    /// Number of slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.n
    }
}

impl LockAlgorithm for Bakery {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        if self.paper_listing_order {
            format!("bakery-paper-listing[{}]", self.n)
        } else {
            format!("bakery[{}]", self.n)
        }
    }

    fn emit_acquire(&self, asm: &mut Asm, who: usize) {
        self.emit_acquire_slot(asm, who);
    }

    fn emit_release(&self, asm: &mut Asm, who: usize) {
        self.emit_release_slot(asm, who);
    }

    fn fence_sites(&self) -> u32 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{build_mutex_programs, run_to_completion};
    use wbmem::MemoryModel;

    #[test]
    fn solo_passage_has_constant_fences_linear_rmrs() {
        for n in [2usize, 4, 8, 16, 32] {
            let mut alloc = RegAlloc::new();
            let owners: Vec<ProcId> = (0..n).map(ProcId::from).collect();
            let bakery = Bakery::new(&mut alloc, n, |s| Some(owners[s]), FenceMask::ALL);
            let built = build_mutex_programs(&bakery, alloc);
            let mut m = built.machine(MemoryModel::Pso);
            let out = m.run_solo(wbmem::ProcId(0), 100_000);
            assert!(matches!(out, wbmem::SoloOutcome::Terminates { .. }));
            let c = m.counters().proc(0);
            assert_eq!(c.fences, 5, "3 acquire + 1 release + 1 final fence");
            // Solo: the doorway scan reads n-1 remote T's and the wait loop
            // reads n-1 remote C's (T's are cached from the scan).
            assert!(c.rmrs as usize >= 2 * (n - 1), "rmrs={} n={n}", c.rmrs);
            assert!(c.rmrs as usize <= 6 * n + 6, "rmrs={} n={n}", c.rmrs);
        }
    }

    #[test]
    fn mutual_exclusion_and_completion_under_round_robin_pso() {
        let n = 5;
        let mut alloc = RegAlloc::new();
        let bakery = Bakery::new(&mut alloc, n, |s| Some(ProcId::from(s)), FenceMask::ALL);
        let built = build_mutex_programs(&bakery, alloc);
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let mut m = built.machine(model);
            run_to_completion(&mut m, 2_000_000);
            assert!(m.all_done(), "bakery[{n}] did not finish under {model}");
        }
    }

    #[test]
    fn paper_listing_order_is_available_and_named() {
        let mut alloc = RegAlloc::new();
        let b = Bakery::new(&mut alloc, 2, |_| None, FenceMask::ALL).with_paper_listing_order();
        assert!(b.name().contains("paper-listing"));
    }
}
