//! Fence-site masks for ablation experiments.
//!
//! Every lock algorithm in this crate numbers its static fence sites (e.g.
//! Bakery's four: after each of the three acquire writes and after the
//! release write). A [`FenceMask`] selects which sites are actually emitted,
//! letting experiment E8 search for the minimal fence placement that is
//! still correct under each memory model. Tree locks apply the same
//! base-lock mask at every node.

use fencevm::Asm;

/// A set of enabled fence sites (bit `i` = site `i` emitted).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FenceMask(u64);

impl FenceMask {
    /// Every site enabled (the algorithms as published).
    pub const ALL: FenceMask = FenceMask(u64::MAX);

    /// Every site disabled.
    pub const NONE: FenceMask = FenceMask(0);

    /// A mask enabling exactly `sites`.
    #[must_use]
    pub fn only(sites: &[u32]) -> Self {
        let mut bits = 0;
        for &s in sites {
            assert!(s < 64, "fence site {s} out of range");
            bits |= 1 << s;
        }
        FenceMask(bits)
    }

    /// This mask with site `site` removed.
    #[must_use]
    pub fn without(self, site: u32) -> Self {
        assert!(site < 64, "fence site {site} out of range");
        FenceMask(self.0 & !(1 << site))
    }

    /// This mask with site `site` added.
    #[must_use]
    pub fn with(self, site: u32) -> Self {
        assert!(site < 64, "fence site {site} out of range");
        FenceMask(self.0 | (1 << site))
    }

    /// Whether site `site` is enabled.
    #[must_use]
    pub fn has(self, site: u32) -> bool {
        site < 64 && self.0 & (1 << site) != 0
    }

    /// Emit a fence at `site` if enabled.
    pub fn emit(self, asm: &mut Asm, site: u32) {
        if self.has(site) {
            asm.fence();
        }
    }

    /// Enumerate all `2^sites` masks over the first `sites` sites
    /// (for exhaustive elision search; `sites ≤ 20` to stay sane).
    #[must_use]
    pub fn enumerate(sites: u32) -> Vec<FenceMask> {
        assert!(sites <= 20, "too many sites to enumerate");
        (0..(1u64 << sites)).map(FenceMask).collect()
    }

    /// Number of enabled sites among the first `sites`.
    #[must_use]
    pub fn count_enabled(self, sites: u32) -> u32 {
        let mask = if sites >= 64 {
            u64::MAX
        } else {
            (1u64 << sites) - 1
        };
        (self.0 & mask).count_ones()
    }

    /// Render the mask over the first `sites` sites, e.g. `[f0 f2]`.
    #[must_use]
    pub fn describe(self, sites: u32) -> String {
        let on: Vec<String> = (0..sites)
            .filter(|&s| self.has(s))
            .map(|s| format!("f{s}"))
            .collect();
        format!("[{}]", on.join(" "))
    }
}

impl Default for FenceMask {
    fn default() -> Self {
        FenceMask::ALL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_none() {
        assert!(FenceMask::ALL.has(0));
        assert!(FenceMask::ALL.has(63));
        assert!(!FenceMask::NONE.has(0));
    }

    #[test]
    fn without_and_with() {
        let m = FenceMask::ALL.without(2);
        assert!(m.has(1));
        assert!(!m.has(2));
        assert!(m.with(2).has(2));
    }

    #[test]
    fn only_selects_exactly() {
        let m = FenceMask::only(&[0, 3]);
        assert!(m.has(0));
        assert!(!m.has(1));
        assert!(m.has(3));
        assert_eq!(m.count_enabled(4), 2);
    }

    #[test]
    fn enumerate_covers_all_subsets() {
        let masks = FenceMask::enumerate(3);
        assert_eq!(masks.len(), 8);
        assert!(masks.contains(&FenceMask::NONE));
        assert!(masks.contains(&FenceMask::only(&[0, 1, 2])));
    }

    #[test]
    fn emit_respects_mask() {
        let mut asm = Asm::new("t");
        FenceMask::only(&[1]).emit(&mut asm, 0);
        assert_eq!(asm.len(), 0);
        FenceMask::only(&[1]).emit(&mut asm, 1);
        assert_eq!(asm.len(), 1);
    }

    #[test]
    fn describe_lists_enabled() {
        assert_eq!(FenceMask::only(&[0, 2]).describe(3), "[f0 f2]");
    }
}
