//! The Filter lock (Peterson's n-process generalization) — a point
//! strictly *above* the tradeoff curve.
//!
//! The lower bound says `f·(log(r/f)+1) ∈ Ω(log n)`; it does not promise
//! that every algorithm sits near the bound. Filter is the classic
//! cautionary example: `n−1` elimination levels, each a Peterson round, so
//! a passage costs **Θ(n) fences *and* Θ(n) RMRs even uncontended**
//! (Θ(n²) total work under contention) — a product of Θ(n), exponentially
//! above the Θ(log n) floor that `GT_f` achieves. Experiment E3 plots it
//! against the optimal family.
//!
//! ```text
//! Acquire(i):
//!   for ℓ in 1..n:
//!     write(level[i], ℓ); fence        // site 0 (per level)
//!     write(victim[ℓ], 1+i); fence     // site 1 (per level)
//!     wait until victim[ℓ] != 1+i or ∀k≠i: level[k] < ℓ
//! Release(i):
//!   write(level[i], 0); fence          // site 2
//! ```

use fencevm::{Asm, CondOp};
use wbmem::ProcId;

use crate::alloc::RegAlloc;
use crate::fences::FenceMask;
use crate::lock::LockAlgorithm;

/// Fence site after each `level` write.
pub const SITE_LEVEL: u32 = 0;
/// Fence site after each `victim` write (the store–load fence per round).
pub const SITE_VICTIM: u32 = 1;
/// Fence site after the release write.
pub const SITE_RELEASE: u32 = 2;

/// A Filter lock for `n` processes.
#[derive(Clone, Debug)]
pub struct FilterLock {
    n: usize,
    level_base: i64,
    victim_base: i64,
    fences: FenceMask,
}

impl FilterLock {
    /// Allocate `level[0..n]` (each in its process's segment) and
    /// `victim[1..n]` (contended, unowned).
    pub fn new(alloc: &mut RegAlloc, n: usize, fences: FenceMask) -> Self {
        assert!(n >= 2, "filter needs at least two processes");
        let level_base = alloc.alloc_array(n, |i| Some(ProcId::from(i)));
        let victim_base = alloc.alloc_array(n, |_| None); // index 0 unused
        FilterLock {
            n,
            level_base: i64::from(level_base.0),
            victim_base: i64::from(victim_base.0),
            fences,
        }
    }
}

impl LockAlgorithm for FilterLock {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!("filter[{}]", self.n)
    }

    fn emit_acquire(&self, asm: &mut Asm, who: usize) {
        assert!(who < self.n, "process {who} out of range");
        let me = 1 + who as i64;
        let n = self.n as i64;
        let t = asm.local("flt_t");
        let k = asm.local("flt_k");
        let addr = asm.local("flt_addr");

        for level in 1..self.n as i64 {
            asm.write(self.level_base + who as i64, level);
            self.fences.emit(asm, SITE_LEVEL);
            asm.write(self.victim_base + level, me);
            self.fences.emit(asm, SITE_VICTIM);

            let next_level = asm.label();
            let spin = asm.here();
            asm.read(self.victim_base + level, t);
            asm.jmp_if(CondOp::Ne, t, me, next_level);
            // Scan: anyone else at this level or above?
            asm.mov(k, 0i64);
            let scan = asm.here();
            asm.jmp_if(CondOp::Ge, k, n, next_level);
            let advance = asm.label();
            asm.jmp_if(CondOp::Eq, k, who as i64, advance);
            asm.add(addr, k, self.level_base);
            asm.read(addr, t);
            asm.jmp_if(CondOp::Ge, t, level, spin);
            asm.bind(advance);
            asm.add(k, k, 1i64);
            asm.jmp(scan);
            asm.bind(next_level);
        }
    }

    fn emit_release(&self, asm: &mut Asm, who: usize) {
        assert!(who < self.n, "process {who} out of range");
        asm.write(self.level_base + who as i64, 0i64);
        self.fences.emit(asm, SITE_RELEASE);
    }

    fn fence_sites(&self) -> u32 {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{build_mutex_programs, build_object, run_to_completion};
    use crate::objects::ObjectKind;
    use wbmem::{MemoryModel, ProcId, SoloOutcome};

    fn counter_instance(n: usize) -> crate::instance::OrderingInstance {
        let mut alloc = RegAlloc::new();
        let lock = FilterLock::new(&mut alloc, n, FenceMask::ALL);
        build_object(&lock, alloc, ObjectKind::Counter)
    }

    #[test]
    fn solo_passage_costs_linear_fences_and_rmrs() {
        for n in [2usize, 8, 32] {
            let inst = counter_instance(n);
            let mut m = inst.machine(MemoryModel::Pso);
            let out = m.run_solo(ProcId(0), 1_000_000);
            assert!(matches!(out, SoloOutcome::Terminates { .. }), "n={n}");
            let c = m.counters().proc(0);
            assert_eq!(
                c.fences,
                2 * (n as u64 - 1) + 3,
                "2 per level + release + object + final (n={n})"
            );
            assert!(c.rmrs as usize >= 2 * (n - 1), "rmrs={} n={n}", c.rmrs);
            assert!(c.rmrs as usize <= 5 * n + 8, "rmrs={} n={n}", c.rmrs);
        }
    }

    #[test]
    fn counter_is_ordering_and_completes() {
        let inst = counter_instance(4);
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let rets = inst.run_sequential(model, 1_000_000);
            assert_eq!(rets, vec![0, 1, 2, 3], "under {model}");
            let mut m = inst.machine(model);
            assert!(run_to_completion(&mut m, 50_000_000), "stuck under {model}");
            let mut all: Vec<u64> = m.return_values().into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3], "under {model}");
        }
    }

    #[test]
    fn mutex_holds_under_round_robin() {
        let mut alloc = RegAlloc::new();
        let lock = FilterLock::new(&mut alloc, 3, FenceMask::ALL);
        let built = build_mutex_programs(&lock, alloc);
        let mut m = built.machine(MemoryModel::Pso);
        let mut steps = 0;
        while !m.all_done() && steps < 5_000_000 {
            for i in 0..3 {
                m.step(wbmem::SchedElem::op(ProcId::from(i)));
                let in_cs = (0..3)
                    .filter(|&j| m.annotation(ProcId::from(j)) == crate::ANNOT_IN_CS)
                    .count();
                assert!(in_cs <= 1, "mutex violated");
            }
            steps += 3;
        }
        assert!(m.all_done());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_process() {
        let mut alloc = RegAlloc::new();
        let _ = FilterLock::new(&mut alloc, 1, FenceMask::ALL);
    }
}
