//! The generalized tournament lock `GT_f` (Section 3, Figure 1): the whole
//! tradeoff spectrum.
//!
//! For a fence budget `1 ≤ f`, the tree has height `f` and branching factor
//! `b = ⌈n^(1/f)⌉` (the smallest `b` with `b^f ≥ n`). Every internal node is
//! a `b`-slot [`Bakery`] lock; a process acquires the `f` node locks on the
//! path from its leaf to the root, competing at each node in the slot named
//! by the corresponding base-`b` digit of its id. Per passage:
//!
//! * fences: `4f` (three per Bakery acquire, one per release) — `O(f)`;
//! * RMRs: `O(b)` per node — `O(f · n^(1/f))` total,
//!
//! matching the lower bound `f·(log(r/f)+1) ∈ Ω(log n)` for every `f`
//! (equation (2) of the paper). `GT_1` *is* the Bakery lock; `GT_{log n}`
//! is a tournament tree with two-slot Bakery nodes.
//!
//! **Slot-collapse safety.** At level `ℓ` (0 = deepest), process `i`
//! competes at node `⌊i/b^(ℓ+1)⌋` in slot `⌊i/b^ℓ⌋ mod b`. Two processes
//! share a `(node, slot)` pair at level `ℓ` exactly when they share the
//! level-`ℓ-1` node — and then they hold that child's lock mutually
//! exclusively, so a slot is never contended.

use fencevm::Asm;
use wbmem::ProcId;

use crate::alloc::RegAlloc;
use crate::bakery::Bakery;
use crate::fences::FenceMask;
use crate::lock::LockAlgorithm;

/// A generalized tournament lock of height `f` with Bakery nodes.
#[derive(Clone, Debug)]
pub struct GtLock {
    n: usize,
    f: usize,
    b: usize,
    /// `levels[l]` holds the Bakery instances at level `l` (0 = deepest).
    levels: Vec<Vec<Bakery>>,
}

/// The smallest branching factor `b` with `b^f ≥ n`.
#[must_use]
pub fn branching_factor(n: usize, f: usize) -> usize {
    assert!(n >= 1 && f >= 1);
    let mut b = 1usize;
    while pow_at_least(b, f, n).is_none() {
        b += 1;
    }
    b
}

/// `Some(b^f)` if `b^f ≥ n` without overflow, else `None`.
fn pow_at_least(b: usize, f: usize, n: usize) -> Option<usize> {
    let mut acc = 1usize;
    for _ in 0..f {
        acc = acc.saturating_mul(b);
        if acc >= n {
            return Some(acc);
        }
    }
    (acc >= n).then_some(acc)
}

impl GtLock {
    /// Build `GT_f` for `n` processes.
    ///
    /// At the deepest level each slot is statically bound to one process,
    /// so its Bakery registers are placed in that process's memory segment;
    /// higher-level node registers are unowned.
    pub fn new(alloc: &mut RegAlloc, n: usize, f: usize, fences: FenceMask) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(f >= 1, "tree height must be at least 1");
        let b = branching_factor(n, f);
        let mut levels = Vec::with_capacity(f);
        for level in 0..f {
            // Nodes that actually cover live processes.
            let span = checked_pow(b, level + 1);
            let node_count = n.div_ceil(span).max(1);
            let mut nodes = Vec::with_capacity(node_count);
            for node in 0..node_count {
                let bakery = Bakery::new(
                    alloc,
                    b,
                    |slot| {
                        if level == 0 {
                            let proc = node * b + slot;
                            (proc < n).then(|| ProcId::from(proc))
                        } else {
                            None
                        }
                    },
                    fences,
                );
                nodes.push(bakery);
            }
            levels.push(nodes);
        }
        GtLock { n, f, b, levels }
    }

    /// The branching factor `b = ⌈n^(1/f)⌉`.
    #[must_use]
    pub fn branching(&self) -> usize {
        self.b
    }

    /// The tree height `f`.
    #[must_use]
    pub fn height(&self) -> usize {
        self.f
    }

    /// `(node, slot)` for process `who` at `level`.
    fn position(&self, who: usize, level: usize) -> (usize, usize) {
        let below = checked_pow(self.b, level);
        let node = who / (below * self.b);
        let slot = (who / below) % self.b;
        (node, slot)
    }
}

fn checked_pow(b: usize, e: usize) -> usize {
    let mut acc = 1usize;
    for _ in 0..e {
        acc = acc.checked_mul(b).expect("GT tree dimensions overflow");
    }
    acc
}

impl LockAlgorithm for GtLock {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!("gt[n={},f={},b={}]", self.n, self.f, self.b)
    }

    fn emit_acquire(&self, asm: &mut Asm, who: usize) {
        assert!(who < self.n, "process {who} out of range");
        for level in 0..self.f {
            let (node, slot) = self.position(who, level);
            self.levels[level][node].emit_acquire_slot(asm, slot);
        }
    }

    fn emit_release(&self, asm: &mut Asm, who: usize) {
        assert!(who < self.n, "process {who} out of range");
        // Root (last acquired) released first.
        for level in (0..self.f).rev() {
            let (node, slot) = self.position(who, level);
            self.levels[level][node].emit_release_slot(asm, slot);
        }
    }

    fn fence_sites(&self) -> u32 {
        4 // Bakery's sites, applied at every node.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{build_mutex_programs, run_to_completion};
    use wbmem::{MemoryModel, ProcId, SoloOutcome};

    #[test]
    fn branching_factor_is_minimal() {
        assert_eq!(branching_factor(16, 1), 16);
        assert_eq!(branching_factor(16, 2), 4);
        assert_eq!(branching_factor(16, 4), 2);
        assert_eq!(branching_factor(17, 2), 5);
        assert_eq!(branching_factor(1, 3), 1);
        assert_eq!(branching_factor(1000, 3), 10);
    }

    #[test]
    fn solo_passage_matches_the_tradeoff_formula() {
        let n = 64;
        for f in [1usize, 2, 3, 6] {
            let mut alloc = RegAlloc::new();
            let lock = GtLock::new(&mut alloc, n, f, FenceMask::ALL);
            let b = lock.branching();
            let built = build_mutex_programs(&lock, alloc);
            let mut m = built.machine(MemoryModel::Pso);
            let out = m.run_solo(ProcId(0), 1_000_000);
            assert!(matches!(out, SoloOutcome::Terminates { .. }), "f={f}");
            let c = m.counters().proc(0);
            assert_eq!(
                c.fences,
                4 * f as u64 + 1,
                "4 fences per level plus the final fence (f={f})"
            );
            // O(f * b) RMRs: each node costs ~2(b-1) solo.
            let per_node = 2 * (b as u64).saturating_sub(1);
            assert!(
                c.rmrs >= (f as u64) * per_node.min(1),
                "rmrs={} f={f} b={b}",
                c.rmrs
            );
            assert!(
                c.rmrs <= (f as u64) * (6 * b as u64 + 8),
                "rmrs={} f={f} b={b}",
                c.rmrs
            );
        }
    }

    #[test]
    fn gt1_is_bakery_shaped() {
        let n = 8;
        let mut alloc = RegAlloc::new();
        let lock = GtLock::new(&mut alloc, n, 1, FenceMask::ALL);
        assert_eq!(lock.branching(), n);
        assert_eq!(lock.levels.len(), 1);
        assert_eq!(lock.levels[0].len(), 1);
    }

    #[test]
    fn completes_under_round_robin_every_model() {
        for (n, f) in [(6usize, 2usize), (8, 3), (9, 2)] {
            let mut alloc = RegAlloc::new();
            let lock = GtLock::new(&mut alloc, n, f, FenceMask::ALL);
            let built = build_mutex_programs(&lock, alloc);
            for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
                let mut m = built.machine(model);
                run_to_completion(&mut m, 20_000_000);
                assert!(m.all_done(), "gt[n={n},f={f}] did not finish under {model}");
            }
        }
    }

    #[test]
    fn leaf_level_registers_live_in_their_process_segment() {
        let mut alloc = RegAlloc::new();
        let _ = GtLock::new(&mut alloc, 9, 2, FenceMask::ALL);
        let layout = alloc.into_layout();
        // b = 3: level 0 has 3 nodes of 3 slots; process i owns slot i%3 of
        // node i/3, i.e. the first 2*9 C/T registers map back to processes.
        // Level-1 (root) registers are unowned.
        assert_eq!(layout.assigned_len(), 18, "9 C + 9 T leaf registers owned");
        // Solo passage of p0 spins only on level-0 node 0 and the root —
        // and its own C/T are local.
        let mut alloc = RegAlloc::new();
        let lock = GtLock::new(&mut alloc, 9, 2, FenceMask::ALL);
        let built = crate::instance::build_mutex_programs(&lock, alloc);
        for i in 0..9u32 {
            // C of leaf slot for process i sits at node (i/3)*6... just
            // verify ownership is assigned to the right process by probing
            // the layout: each process owns exactly 2 lock registers plus
            // its mutex scratch register.
            let owned_by_i = built
                .layout
                .iter()
                .filter(|&(_, p)| p == ProcId::from(i as usize))
                .count();
            assert_eq!(owned_by_i, 3, "p{i}");
        }
    }

    #[test]
    fn positions_are_consistent() {
        let mut alloc = RegAlloc::new();
        let lock = GtLock::new(&mut alloc, 27, 3, FenceMask::ALL);
        assert_eq!(lock.branching(), 3);
        // Process 14 = 112 base 3: slots are its digits, low to high.
        assert_eq!(lock.position(14, 0), (4, 2));
        assert_eq!(lock.position(14, 1), (1, 1));
        assert_eq!(lock.position(14, 2), (0, 1));
    }
}
