//! Assembling complete multi-process algorithm instances.
//!
//! An [`OrderingInstance`] bundles one program per process with the DSM
//! layout their registers were allocated under — everything a
//! [`wbmem::Machine`] needs. Builders are provided for ordering objects
//! ([`build_object`]) and for plain mutex exercises with critical-section
//! annotations ([`build_mutex_programs`]).

use std::sync::Arc;

use fencevm::{Asm, Program, VmProc};
use wbmem::{Machine, MachineConfig, MemoryLayout, MemoryModel, ProcId, SchedElem};

use crate::alloc::RegAlloc;
use crate::bakery::Bakery;
use crate::fences::FenceMask;
use crate::gt::GtLock;
use crate::lock::LockAlgorithm;
use crate::objects::ObjectKind;
use crate::peterson::Peterson2;
use crate::tournament::Tournament;

/// Annotation value while a process is inside its critical section.
pub const ANNOT_IN_CS: u64 = 1;

/// A complete `n`-process algorithm instance: per-process programs plus the
/// register layout.
#[derive(Clone, Debug)]
pub struct OrderingInstance {
    /// Human-readable instance name, e.g. `"counter/gt[n=16,f=2]"`.
    pub name: String,
    /// Number of processes.
    pub n: usize,
    /// Program for each process, indexed by process id.
    pub programs: Vec<Arc<Program>>,
    /// DSM segment layout for the allocated registers.
    pub layout: MemoryLayout,
    /// Number of logical fence sites of the underlying lock (for ablation).
    pub fence_sites: u32,
}

impl OrderingInstance {
    /// A machine at the initial configuration of this instance.
    #[must_use]
    pub fn machine(&self, model: MemoryModel) -> Machine<VmProc> {
        self.machine_from(MachineConfig::new(model, self.layout.clone()))
    }

    /// A machine with a custom configuration. The configuration's layout is
    /// replaced by this instance's layout.
    #[must_use]
    pub fn machine_from(&self, mut config: MachineConfig) -> Machine<VmProc> {
        config.layout = self.layout.clone();
        let procs = self
            .programs
            .iter()
            .map(|p| VmProc::new(p.clone()))
            .collect();
        Machine::new(config, procs)
    }

    /// Run the processes to completion **sequentially** (each runs solo to
    /// its final state, in id order) and return the return values.
    ///
    /// For an ordering algorithm this must yield `0, 1, …, n-1`.
    ///
    /// # Panics
    ///
    /// Panics if some process fails to finish within `max_steps` solo steps.
    #[must_use]
    pub fn run_sequential(&self, model: MemoryModel, max_steps: usize) -> Vec<u64> {
        let mut m = self.machine(model);
        for i in 0..self.n {
            let p = ProcId::from(i);
            let out = m.run_solo(p, max_steps);
            assert!(
                matches!(out, wbmem::SoloOutcome::Terminates { .. }),
                "{}: process {p} did not finish solo ({out:?})",
                self.name
            );
        }
        m.return_values()
            .into_iter()
            .map(|v| v.expect("all finished"))
            .collect()
    }
}

/// Round-robin a machine until every process finishes or `max_steps`
/// schedule elements have been applied. Returns `true` on completion.
pub fn run_to_completion(m: &mut Machine<VmProc>, max_steps: usize) -> bool {
    let n = m.n();
    let mut budget = max_steps;
    while !m.all_done() && budget > 0 {
        for i in 0..n {
            m.step(SchedElem::op(ProcId::from(i)));
        }
        budget = budget.saturating_sub(n);
    }
    m.all_done()
}

/// Build the per-process programs for `lock` protecting `object`.
///
/// Program shape (the paper's `Count` and friends):
///
/// ```text
/// acquire; [annot in-CS] object-op; fence; [annot out] release; fence; return
/// ```
pub fn build_object(
    lock: &dyn LockAlgorithm,
    alloc: RegAlloc,
    object: ObjectKind,
) -> OrderingInstance {
    let n = lock.n();
    let mut alloc = alloc;
    let obj_base = alloc.alloc_array(object.register_count(n), |_| None);
    let counter_reg = i64::from(obj_base.0);
    let layout = alloc.into_layout();

    let programs = (0..n)
        .map(|who| {
            let mut asm = Asm::new(format!("{object}/{}/p{who}", lock.name()));
            if object == ObjectKind::NoisyCounter {
                // Announce before competing: a shared-register write in the
                // very first write batch (never read; see ObjectKind docs).
                asm.write(counter_reg + 1, 1 + who as i64);
                asm.fence();
            }
            lock.emit_acquire(&mut asm, who);
            asm.annot(ANNOT_IN_CS);
            let ret = asm.local("ret");
            match object {
                ObjectKind::Counter | ObjectKind::FetchIncrement | ObjectKind::NoisyCounter => {
                    asm.read(counter_reg, ret);
                    let next = asm.local("next");
                    asm.add(next, ret, 1i64);
                    asm.write(counter_reg, next);
                    asm.fence();
                }
                ObjectKind::Queue => {
                    // tail is obj_base; slots are obj_base+1 ..= obj_base+n.
                    asm.read(counter_reg, ret); // ret := tail
                    let addr = asm.local("addr");
                    asm.add(addr, ret, counter_reg + 1);
                    asm.write(addr, 1 + who as i64); // Q[tail] := 1 + id
                    let next = asm.local("next");
                    asm.add(next, ret, 1i64);
                    asm.write(counter_reg, next); // tail := tail + 1
                    asm.fence();
                }
            }
            asm.annot(0);
            lock.emit_release(&mut asm, who);
            asm.fence(); // w.l.o.g.: fence immediately before return
            asm.ret(ret);
            Arc::new(asm.assemble())
        })
        .collect();

    OrderingInstance {
        name: format!("{object}/{}", lock.name()),
        n,
        programs,
        layout,
        fence_sites: lock.fence_sites(),
    }
}

/// Build plain mutex-exercise programs: acquire, a one-step critical
/// section reading a private scratch register, release, return 0. Critical
/// sections are marked with [`ANNOT_IN_CS`] for the model checker.
pub fn build_mutex_programs(lock: &dyn LockAlgorithm, alloc: RegAlloc) -> OrderingInstance {
    let n = lock.n();
    let mut alloc = alloc;
    let scratch = alloc.alloc_array(n, |i| Some(ProcId::from(i)));
    let layout = alloc.into_layout();

    let programs = (0..n)
        .map(|who| {
            let mut asm = Asm::new(format!("mutex/{}/p{who}", lock.name()));
            let entry = asm.here();
            lock.emit_acquire(&mut asm, who);
            asm.annot(ANNOT_IN_CS);
            let t = asm.local("cs_t");
            asm.read(i64::from(scratch.0) + who as i64, t);
            asm.annot(0);
            lock.emit_release(&mut asm, who);
            asm.fence();
            asm.ret(0i64);
            if lock.has_recovery() {
                // Crash-hardened locks restart here: repair the shared
                // announcements, then recompete from the top.
                asm.recovery_here();
                lock.emit_recovery(&mut asm, who);
                asm.jmp(entry);
            }
            Arc::new(asm.assemble())
        })
        .collect();

    OrderingInstance {
        name: format!("mutex/{}", lock.name()),
        n,
        programs,
        layout,
        fence_sites: lock.fence_sites(),
    }
}

/// Build **repeating-passage** programs: each process loops
/// acquire → critical section → release for `passages` rounds before
/// returning. This is the steady-state workload behind amortized
/// per-passage measurements (experiment E10): one-shot passages include
/// cold-cache effects that repetition amortizes away, while spin-heavy
/// locks (TTAS) keep paying per release.
///
/// The critical section increments a shared counter (read–add–write +
/// fence); each process returns the value it observed in its **last**
/// passage, so a completed run must leave `counter == n·passages`.
pub fn build_repeating(
    lock: &dyn LockAlgorithm,
    alloc: RegAlloc,
    passages: usize,
) -> OrderingInstance {
    assert!(passages >= 1, "need at least one passage");
    let n = lock.n();
    let mut alloc = alloc;
    let counter = i64::from(alloc.alloc(None).0);
    let layout = alloc.into_layout();

    let programs = (0..n)
        .map(|who| {
            let mut asm = Asm::new(format!("repeat{passages}/{}/p{who}", lock.name()));
            let round = asm.local("round");
            let seen = asm.local("seen");
            let next = asm.local("next");
            let done = asm.label();
            let head = asm.here();
            asm.jmp_if(fencevm::CondOp::Ge, round, passages as i64, done);
            lock.emit_acquire(&mut asm, who);
            asm.annot(ANNOT_IN_CS);
            asm.read(counter, seen);
            asm.add(next, seen, 1i64);
            asm.write(counter, next);
            asm.fence();
            asm.annot(0);
            lock.emit_release(&mut asm, who);
            asm.add(round, round, 1i64);
            asm.jmp(head);
            asm.bind(done);
            asm.fence();
            asm.ret(seen);
            Arc::new(asm.assemble())
        })
        .collect();

    OrderingInstance {
        name: format!("repeat{passages}/{}", lock.name()),
        n,
        programs,
        layout,
        fence_sites: lock.fence_sites(),
    }
}

/// The lock families of the paper, as buildable descriptions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Lamport's Bakery lock (`GT_1`): O(1) fences, O(n) RMRs.
    Bakery,
    /// Bakery with the write order exactly as printed in the paper's
    /// Algorithm 1 (ticket published *after* the doorway closes). Broken
    /// even under SC — kept for the E5 regression experiment.
    BakeryPaperListing,
    /// Peterson's two-process lock (requires `n == 2`).
    Peterson,
    /// Binary tournament tree of Peterson locks (`n` a power of two):
    /// O(log n) fences, O(log n) RMRs.
    Tournament,
    /// Generalized tournament of height `f` with Bakery nodes:
    /// O(f) fences, O(f·n^(1/f)) RMRs.
    Gt {
        /// The tree height (fence budget).
        f: usize,
    },
    /// Test-and-test-and-set over CAS (the §6 comparison-primitive
    /// extension): O(1) fences and solo RMRs, Θ(n) contended RMRs.
    Ttas,
    /// MCS queue lock over fetch-and-store: O(1) RMRs per passage even
    /// under contention (local spinning), the \[12\] connection.
    Mcs,
    /// The Filter lock (n-process Peterson): Θ(n) fences *and* Θ(n) solo
    /// RMRs — a read/write lock strictly above the tradeoff curve.
    Filter,
    /// Crash-hardened TTAS: recovery conditionally self-releases the lock
    /// word before recompeting (see [`RecoverableTtas`](crate::RecoverableTtas)).
    RecoverableTtas,
    /// Crash-hardened Bakery: recovery retracts the doorway flag and
    /// ticket with fences before recompeting (see
    /// [`RecoverableBakery`](crate::RecoverableBakery)).
    RecoverableBakery,
}

impl LockKind {
    /// Construct the lock, allocating its registers from `alloc`. Static
    /// per-process registers are placed in their process's segment.
    #[must_use]
    pub fn build(
        self,
        alloc: &mut RegAlloc,
        n: usize,
        fences: FenceMask,
    ) -> Box<dyn LockAlgorithm> {
        match self {
            LockKind::Bakery => Box::new(Bakery::new(alloc, n, |s| Some(ProcId::from(s)), fences)),
            LockKind::BakeryPaperListing => Box::new(
                Bakery::new(alloc, n, |s| Some(ProcId::from(s)), fences).with_paper_listing_order(),
            ),
            LockKind::Peterson => {
                assert_eq!(n, 2, "Peterson is a two-process lock");
                Box::new(Peterson2::new(alloc, |s| Some(ProcId::from(s)), fences))
            }
            LockKind::Tournament => Box::new(Tournament::new(alloc, n, fences)),
            LockKind::Gt { f } => Box::new(GtLock::new(alloc, n, f, fences)),
            LockKind::Ttas => Box::new(crate::tas::TtasLock::new(alloc, n, fences)),
            LockKind::Mcs => Box::new(crate::mcs::McsLock::new(alloc, n, fences)),
            LockKind::Filter => Box::new(crate::filter::FilterLock::new(alloc, n, fences)),
            LockKind::RecoverableTtas => {
                Box::new(crate::recover::RecoverableTtas::new(alloc, n, fences))
            }
            LockKind::RecoverableBakery => Box::new(crate::recover::RecoverableBakery::new(
                alloc,
                n,
                |s| Some(ProcId::from(s)),
                fences,
            )),
        }
    }
}

impl std::fmt::Display for LockKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockKind::Bakery => write!(f, "bakery"),
            LockKind::BakeryPaperListing => write!(f, "bakery-paper-listing"),
            LockKind::Peterson => write!(f, "peterson"),
            LockKind::Tournament => write!(f, "tournament"),
            LockKind::Gt { f: h } => write!(f, "gt(f={h})"),
            LockKind::Ttas => write!(f, "ttas"),
            LockKind::Mcs => write!(f, "mcs"),
            LockKind::Filter => write!(f, "filter"),
            LockKind::RecoverableTtas => write!(f, "r-ttas"),
            LockKind::RecoverableBakery => write!(f, "r-bakery"),
        }
    }
}

impl std::str::FromStr for LockKind {
    type Err = String;

    /// Inverse of `Display` (`"bakery"`, `"gt(f=2)"`, …), so lock kinds
    /// round-trip through process boundaries (fleet job files, CLI args).
    fn from_str(s: &str) -> Result<LockKind, String> {
        match s {
            "bakery" => Ok(LockKind::Bakery),
            "bakery-paper-listing" => Ok(LockKind::BakeryPaperListing),
            "peterson" => Ok(LockKind::Peterson),
            "tournament" => Ok(LockKind::Tournament),
            "ttas" => Ok(LockKind::Ttas),
            "mcs" => Ok(LockKind::Mcs),
            "filter" => Ok(LockKind::Filter),
            "r-ttas" => Ok(LockKind::RecoverableTtas),
            "r-bakery" => Ok(LockKind::RecoverableBakery),
            other => other
                .strip_prefix("gt(f=")
                .and_then(|rest| rest.strip_suffix(')'))
                .and_then(|h| h.parse().ok())
                .map(|f| LockKind::Gt { f })
                .ok_or_else(|| format!("unknown lock kind `{other}`")),
        }
    }
}

/// Build a complete ordering-object instance for `kind` over `n` processes
/// with all fences enabled.
#[must_use]
pub fn build_ordering(kind: LockKind, n: usize, object: ObjectKind) -> OrderingInstance {
    let mut alloc = RegAlloc::new();
    let lock = kind.build(&mut alloc, n, FenceMask::ALL);
    build_object(lock.as_ref(), alloc, object)
}

/// Build a repeating-passage instance for `kind` over `n` processes with
/// all fences enabled (see [`build_repeating`]).
#[must_use]
pub fn build_steady_state(kind: LockKind, n: usize, passages: usize) -> OrderingInstance {
    let mut alloc = RegAlloc::new();
    let lock = kind.build(&mut alloc, n, FenceMask::ALL);
    build_repeating(lock.as_ref(), alloc, passages)
}

/// Build a mutex-exercise instance for `kind` over `n` processes with the
/// given fence mask.
#[must_use]
pub fn build_mutex(kind: LockKind, n: usize, fences: FenceMask) -> OrderingInstance {
    let mut alloc = RegAlloc::new();
    let lock = kind.build(&mut alloc, n, fences);
    build_mutex_programs(lock.as_ref(), alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_counter_is_ordering() {
        for kind in [
            LockKind::Bakery,
            LockKind::Tournament,
            LockKind::Gt { f: 2 },
        ] {
            let inst = build_ordering(kind, 4, ObjectKind::Counter);
            for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
                let rets = inst.run_sequential(model, 100_000);
                assert_eq!(rets, vec![0, 1, 2, 3], "{} under {model}", inst.name);
            }
        }
    }

    #[test]
    fn sequential_queue_is_ordering() {
        let inst = build_ordering(LockKind::Gt { f: 2 }, 5, ObjectKind::Queue);
        let rets = inst.run_sequential(MemoryModel::Pso, 100_000);
        assert_eq!(rets, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn contended_counter_returns_a_permutation() {
        for kind in [
            LockKind::Bakery,
            LockKind::Tournament,
            LockKind::Gt { f: 3 },
        ] {
            let inst = build_ordering(kind, 8, ObjectKind::Counter);
            let mut m = inst.machine(MemoryModel::Pso);
            assert!(run_to_completion(&mut m, 10_000_000), "{} stuck", inst.name);
            let mut rets: Vec<u64> = m.return_values().into_iter().map(Option::unwrap).collect();
            rets.sort_unstable();
            assert_eq!(rets, (0..8).collect::<Vec<u64>>(), "{}", inst.name);
        }
    }

    #[test]
    fn contended_queue_entries_match_return_order() {
        let n = 6;
        let inst = build_ordering(LockKind::Tournament, 8, ObjectKind::Queue);
        let _ = n;
        let mut m = inst.machine(MemoryModel::Pso);
        assert!(run_to_completion(&mut m, 10_000_000));
        // Queue slot k holds 1 + (id of the process that returned k).
        let tail_base = inst.layout.assigned_len(); // not the tail register; compute from returns instead
        let _ = tail_base;
        let rets = m.return_values();
        for (proc, ret) in rets.iter().enumerate() {
            let k = ret.unwrap();
            // find queue registers: they are the last n+1 allocated; slot k
            // is at (total - (8 + 1)) + 1 + k ... recovered via memory scan:
            // look for the register holding 1 + proc.
            let mut found = false;
            for reg in 0..4096u32 {
                if m.memory(wbmem::RegId(reg)).payload() == 1 + proc as u64 {
                    found = true;
                    break;
                }
            }
            assert!(found, "queue entry for p{proc} (rank {k}) not found");
        }
    }

    #[test]
    fn mutual_exclusion_never_violated_under_round_robin() {
        let inst = build_mutex(LockKind::Gt { f: 2 }, 6, FenceMask::ALL);
        let mut m = inst.machine(MemoryModel::Pso);
        let mut steps = 0usize;
        while !m.all_done() && steps < 2_000_000 {
            for i in 0..6 {
                m.step(SchedElem::op(ProcId::from(i)));
                let in_cs = (0..6)
                    .filter(|&j| m.annotation(ProcId::from(j)) == ANNOT_IN_CS)
                    .count();
                assert!(in_cs <= 1, "mutual exclusion violated");
            }
            steps += 6;
        }
        assert!(m.all_done());
    }

    #[test]
    fn repeating_passages_complete_and_count() {
        for kind in [
            LockKind::Bakery,
            LockKind::Gt { f: 2 },
            LockKind::Ttas,
            LockKind::Mcs,
        ] {
            let (n, passages) = (3usize, 4usize);
            let inst = build_steady_state(kind, n, passages);
            for model in [MemoryModel::Tso, MemoryModel::Pso] {
                let mut m = inst.machine(model);
                assert!(
                    run_to_completion(&mut m, 100_000_000),
                    "{} stuck",
                    inst.name
                );
                // The counter register is the last allocated one; find it by
                // scanning: its final payload must be n * passages.
                let expect = (n * passages) as u64;
                let found = (0..256u32).any(|r| m.memory(wbmem::RegId(r)).payload() == expect);
                assert!(
                    found,
                    "{}: counter never reached {expect} under {model}",
                    inst.name
                );
            }
        }
    }

    #[test]
    fn repeating_passages_preserve_mutex_under_adversary() {
        use rand::{Rng, SeedableRng};
        let inst = build_steady_state(LockKind::Ttas, 3, 3);
        let mut m = inst.machine(MemoryModel::Pso);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        for _ in 0..100_000 {
            let choices = m.choices();
            if choices.is_empty() {
                break;
            }
            m.step(choices[rng.gen_range(0..choices.len())]);
            let in_cs = (0..3)
                .filter(|&i| m.annotation(ProcId::from(i)) == ANNOT_IN_CS)
                .count();
            assert!(in_cs <= 1, "mutex violated");
        }
    }

    #[test]
    fn lock_kind_display() {
        assert_eq!(LockKind::Bakery.to_string(), "bakery");
        assert_eq!(LockKind::Gt { f: 3 }.to_string(), "gt(f=3)");
    }
}
