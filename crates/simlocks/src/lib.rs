//! # simlocks — the paper's lock family and ordering objects, as programs
//!
//! This crate implements the algorithms of *“Trading Fences with RMRs and
//! Separating Memory Models”* (Attiya–Hendler–Woelfel, PODC 2015) as
//! [`fencevm`] programs that run on the [`wbmem`] write-buffer machine:
//!
//! * [`Bakery`] — Lamport's Bakery lock (the paper's Algorithm 1):
//!   O(1) fences, O(n) RMRs per passage.
//! * [`Tournament`] — the binary tournament tree: O(log n) fences,
//!   O(log n) RMRs.
//! * [`GtLock`] — the generalized tournament `GT_f` (Section 3): for every
//!   fence budget `f`, O(f) fences and O(f·n^(1/f)) RMRs, sweeping the
//!   whole tradeoff spectrum between the previous two.
//! * [`Peterson2`] — Peterson's two-process lock, the memory-model
//!   separation witness (correct under TSO with one fence, broken under
//!   PSO).
//! * Ordering objects (Section 4): counter, fetch-and-increment and queue
//!   protected by any of the locks, whose return values expose the access
//!   rank — the object class the paper's lower bound covers.
//!
//! Every fence in every algorithm is an ablatable *site* controlled by a
//! [`FenceMask`], enabling the fence-elision experiments.
//!
//! ## Example
//!
//! ```
//! use simlocks::{build_ordering, LockKind, ObjectKind};
//! use wbmem::MemoryModel;
//!
//! // A 4-process counter protected by GT_2, run sequentially under PSO:
//! let inst = build_ordering(LockKind::Gt { f: 2 }, 4, ObjectKind::Counter);
//! let returns = inst.run_sequential(MemoryModel::Pso, 100_000);
//! assert_eq!(returns, vec![0, 1, 2, 3]); // the ordering property
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod bakery;
pub mod fences;
pub mod filter;
pub mod gt;
pub mod instance;
pub mod lock;
pub mod mcs;
pub mod objects;
pub mod peterson;
pub mod recover;
pub mod tas;
pub mod tournament;

pub use alloc::RegAlloc;
pub use bakery::Bakery;
pub use fences::FenceMask;
pub use filter::FilterLock;
pub use gt::{branching_factor, GtLock};
pub use instance::{
    build_mutex, build_mutex_programs, build_object, build_ordering, build_repeating,
    build_steady_state, run_to_completion, LockKind, OrderingInstance, ANNOT_IN_CS,
};
pub use lock::LockAlgorithm;
pub use mcs::McsLock;
pub use objects::ObjectKind;
pub use peterson::Peterson2;
pub use recover::{RecoverableBakery, RecoverableTtas};
pub use tas::TtasLock;
pub use tournament::Tournament;
