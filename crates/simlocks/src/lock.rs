//! The lock-algorithm abstraction.

use fencevm::Asm;

/// A mutual-exclusion algorithm whose acquire/release sections can be
/// emitted into a process's program.
///
/// A lock instance owns its shared registers (allocated from a
/// [`RegAlloc`](crate::RegAlloc) at construction); `emit_acquire` /
/// `emit_release` splice the per-process code into an [`Asm`] under
/// construction. `who` is the global process id, `0 ≤ who < n()`.
pub trait LockAlgorithm {
    /// Number of processes this instance supports.
    fn n(&self) -> usize;

    /// A short human-readable name, e.g. `"bakery"` or `"gt(f=2)"`.
    fn name(&self) -> String;

    /// Emit the acquire section for process `who`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `who >= n()`.
    fn emit_acquire(&self, asm: &mut Asm, who: usize);

    /// Emit the release section for process `who`.
    fn emit_release(&self, asm: &mut Asm, who: usize);

    /// Number of *logical* fence sites in the base algorithm, i.e. the
    /// meaningful bit width of a [`FenceMask`](crate::FenceMask) for this
    /// lock. Tree locks reuse their node algorithm's sites at every node.
    fn fence_sites(&self) -> u32;

    /// Whether this lock defines a crash-recovery section. Locks without
    /// one restart at the program entry after a crash, carrying whatever
    /// stale announcements their pre-crash writes left in shared memory —
    /// the crash-exposed baseline.
    fn has_recovery(&self) -> bool {
        false
    }

    /// Emit the crash-recovery section for process `who`: code that
    /// repairs the process's shared announcements (re-announcing or
    /// retracting them) so the lock's invariants hold again before the
    /// acquire path is re-entered. Only called when [`has_recovery`]
    /// returns `true`; the instance builder appends a jump back to the
    /// program entry afterwards.
    ///
    /// [`has_recovery`]: LockAlgorithm::has_recovery
    fn emit_recovery(&self, _asm: &mut Asm, _who: usize) {}
}
