//! The MCS queue lock — local-spin mutual exclusion with fetch-and-store.
//!
//! The paper's reference \[12\] (Golab–Hadzilacos–Hendler–Woelfel) studies
//! RMR-efficient implementations of strong primitives; MCS is the classic
//! beneficiary: each process enqueues its own *qnode* with a `swap` on the
//! tail pointer and then spins **on its own node** — in its own memory
//! segment — so a passage costs **O(1) RMRs even under contention**, at
//! the price of fetch-and-store/CAS hardware.
//!
//! ```text
//! Acquire(i):
//!   L[i] := 1; N[i] := nil            // my qnode (in my segment)
//!   pred := swap(tail, i)             // drains the buffer itself
//!   if pred != nil:
//!     N[pred] := i; fence             // site 0: link visible to pred
//!     wait until L[i] == 0            // local spin!
//! Release(i):
//!   if N[i] == nil:
//!     if CAS(tail, i, nil) succeeds: return
//!     wait until N[i] != nil          // local spin
//!   L[N[i]] := 0; fence               // site 1: hand the lock over
//! ```
//!
//! Together with [`TtasLock`](crate::TtasLock) this brackets the strong-
//! primitive design space in experiment E9: TTAS spins remotely (Θ(n)
//! contended RMRs), MCS spins locally (O(1)).

use fencevm::{Asm, CondOp};
use wbmem::ProcId;

use crate::alloc::RegAlloc;
use crate::fences::FenceMask;
use crate::lock::LockAlgorithm;

/// Fence site after linking into the predecessor's `next` field.
pub const SITE_LINK: u32 = 0;
/// Fence site after the hand-over write in release.
pub const SITE_HANDOVER: u32 = 1;

/// An MCS queue lock. Register layout: `tail` (unowned), then per-process
/// `L[i]` (locked flag) and `N[i]` (successor), both in `p_i`'s segment.
/// Process ids are encoded as `1 + i` in shared registers (0 = nil).
#[derive(Clone, Debug)]
pub struct McsLock {
    n: usize,
    tail: i64,
    l_base: i64,
    n_base: i64,
    fences: FenceMask,
}

impl McsLock {
    /// Allocate the lock's registers.
    pub fn new(alloc: &mut RegAlloc, n: usize, fences: FenceMask) -> Self {
        assert!(n >= 1, "need at least one process");
        let tail = alloc.alloc(None);
        let l_base = alloc.alloc_array(n, |i| Some(ProcId::from(i)));
        let n_base = alloc.alloc_array(n, |i| Some(ProcId::from(i)));
        McsLock {
            n,
            tail: i64::from(tail.0),
            l_base: i64::from(l_base.0),
            n_base: i64::from(n_base.0),
            fences,
        }
    }
}

impl LockAlgorithm for McsLock {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!("mcs[{}]", self.n)
    }

    fn emit_acquire(&self, asm: &mut Asm, who: usize) {
        assert!(who < self.n, "process {who} out of range");
        let me = 1 + who as i64;
        let t = asm.local("mcs_t");
        let pred = asm.local("mcs_pred");
        let addr = asm.local("mcs_addr");

        // Prepare my qnode: locked, no successor. Both writes are to my own
        // segment; the swap below drains them before the enqueue becomes
        // visible, so no fence is needed here.
        asm.write(self.l_base + who as i64, 1i64);
        asm.write(self.n_base + who as i64, 0i64);
        asm.swap(self.tail, me, pred);

        let acquired = asm.label();
        asm.jmp_if(CondOp::Eq, pred, 0i64, acquired);
        // Link into the predecessor's next pointer and publish it.
        asm.add(addr, pred, self.n_base - 1);
        asm.write(addr, me);
        self.fences.emit(asm, SITE_LINK);
        // Spin on my own locked flag — a register in my segment.
        let spin = asm.here();
        asm.read(self.l_base + who as i64, t);
        asm.jmp_if(CondOp::Ne, t, 0i64, spin);
        asm.bind(acquired);
    }

    fn emit_release(&self, asm: &mut Asm, who: usize) {
        assert!(who < self.n, "process {who} out of range");
        let me = 1 + who as i64;
        let t = asm.local("mcs_rt");
        let addr = asm.local("mcs_raddr");

        let done = asm.label();
        let hand_over = asm.label();
        asm.read(self.n_base + who as i64, t);
        asm.jmp_if(CondOp::Ne, t, 0i64, hand_over);
        // No known successor: try to reset the tail.
        asm.cas(self.tail, me, 0i64, t);
        asm.jmp_if(CondOp::Eq, t, me, done); // observed me -> swap happened
                                             // A successor is mid-enqueue: wait for its link (local spin).
        let spin = asm.here();
        asm.read(self.n_base + who as i64, t);
        asm.jmp_if(CondOp::Eq, t, 0i64, spin);

        asm.bind(hand_over);
        // t holds 1 + successor id; unlock its flag.
        asm.add(addr, t, self.l_base - 1);
        asm.write(addr, 0i64);
        self.fences.emit(asm, SITE_HANDOVER);
        asm.bind(done);
    }

    fn fence_sites(&self) -> u32 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{build_object, run_to_completion};
    use crate::objects::ObjectKind;
    use wbmem::{MemoryModel, ProcId, SoloOutcome};

    fn counter_instance(n: usize) -> crate::instance::OrderingInstance {
        let mut alloc = RegAlloc::new();
        let lock = McsLock::new(&mut alloc, n, FenceMask::ALL);
        build_object(&lock, alloc, ObjectKind::Counter)
    }

    #[test]
    fn solo_passage_is_constant_cost_for_any_n() {
        for n in [2usize, 64, 1024] {
            let inst = counter_instance(n);
            let mut m = inst.machine(MemoryModel::Pso);
            let out = m.run_solo(ProcId(0), 100_000);
            assert!(matches!(out, SoloOutcome::Terminates { .. }), "n={n}");
            let c = m.counters().proc(0);
            assert_eq!(c.swap_ops, 1, "n={n}");
            assert_eq!(c.cas_ops, 1, "uncontended release resets the tail (n={n})");
            assert!(c.rmrs <= 4, "rmrs={} must be O(1) (n={n})", c.rmrs);
            assert_eq!(c.fences, 2, "object + final fence only (n={n})");
        }
    }

    #[test]
    fn sequential_and_contended_counter_is_ordering() {
        let inst = counter_instance(5);
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let rets = inst.run_sequential(model, 200_000);
            assert_eq!(rets, vec![0, 1, 2, 3, 4], "under {model}");
            let mut m = inst.machine(model);
            assert!(run_to_completion(&mut m, 10_000_000), "stuck under {model}");
            let mut all: Vec<u64> = m.return_values().into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4], "under {model}");
        }
    }

    #[test]
    fn contended_rmrs_stay_constant_per_passage() {
        // The MCS signature: local spinning keeps contended per-passage
        // RMRs O(1) — compare TTAS, which grows linearly.
        for n in [4usize, 16, 64] {
            let inst = counter_instance(n);
            let mut m = inst.machine(MemoryModel::Pso);
            assert!(run_to_completion(&mut m, 100_000_000), "n={n}");
            let per_passage = m.counters().rho() as f64 / n as f64;
            assert!(
                per_passage <= 8.0,
                "n={n}: {per_passage} RMRs/passage not O(1)"
            );
        }
    }
}
