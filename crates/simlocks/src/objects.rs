//! Ordering objects built from a lock (Section 4 of the paper).
//!
//! The lower bound covers every *ordering algorithm*: an algorithm in which,
//! in the clean executions the proof constructs, the `k`-th process to
//! access the object returns `k-1` — so the sequence of return values
//! reveals the access order. Locks, counters, queues and fetch-and-increment
//! all yield ordering algorithms; this module provides the lock-based
//! constructions the paper sketches:
//!
//! * [`ObjectKind::Counter`] — the paper's `Count`: in the critical section
//!   read `C`, write `C + 1`, fence, return the value read.
//! * [`ObjectKind::FetchIncrement`] — semantically identical to `Count`
//!   (fetch-and-increment *is* a counter returning the old value); kept as
//!   a distinct kind so experiments can name it.
//! * [`ObjectKind::Queue`] — a lock-based enqueue: append the caller's id
//!   at the tail and return the position, which is the caller's rank.
//!
//! Every generated program ends with `fence(); return(x)` — the proof's
//! w.l.o.g. assumption that a process fences just before returning.

use std::fmt;

/// The ordering object exercised inside the critical section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// Read-increment-write counter returning the old value.
    Counter,
    /// Fetch-and-increment (same protocol as [`ObjectKind::Counter`]).
    FetchIncrement,
    /// Enqueue into an array queue, returning the slot index.
    Queue,
    /// A counter whose processes first *announce* themselves with a write
    /// to one shared scratch register **before** acquiring the lock. The
    /// announcement is semantically inert (never read), but it puts a
    /// shared-register write in every process's first write batch — which
    /// is exactly what makes the lower-bound encoder's
    /// `wait-hidden-commit` command fire: a stalled later process's
    /// announcement can be committed hidden, immediately overwritten by an
    /// earlier process's announcement.
    NoisyCounter,
}

impl ObjectKind {
    /// All object kinds.
    pub const ALL: [ObjectKind; 4] = [
        ObjectKind::Counter,
        ObjectKind::FetchIncrement,
        ObjectKind::Queue,
        ObjectKind::NoisyCounter,
    ];

    /// Registers this object needs for `n` processes.
    #[must_use]
    pub fn register_count(self, n: usize) -> usize {
        match self {
            ObjectKind::Counter | ObjectKind::FetchIncrement => 1,
            ObjectKind::Queue => 1 + n,    // tail pointer + n array slots
            ObjectKind::NoisyCounter => 2, // counter + announcement scratch
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ObjectKind::Counter => "counter",
            ObjectKind::FetchIncrement => "fetch-increment",
            ObjectKind::Queue => "queue",
            ObjectKind::NoisyCounter => "noisy-counter",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_counts() {
        assert_eq!(ObjectKind::Counter.register_count(8), 1);
        assert_eq!(ObjectKind::FetchIncrement.register_count(8), 1);
        assert_eq!(ObjectKind::Queue.register_count(8), 9);
        assert_eq!(ObjectKind::NoisyCounter.register_count(8), 2);
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = ObjectKind::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(
            names,
            ["counter", "fetch-increment", "queue", "noisy-counter"]
        );
    }
}
