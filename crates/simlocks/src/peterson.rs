//! Peterson's two-process lock, with ablatable fences.
//!
//! This is the memory-model separation witness of experiment E5:
//!
//! * With **both** write fences (sites 0 and 1), the lock is correct under
//!   SC, TSO and PSO: every write is globally visible before the next
//!   operation.
//! * With only the **store–load** fence (site 1, after the `victim` write),
//!   the lock is still correct under **TSO** — the FIFO buffer commits
//!   `flag` before `victim`, and the fence drains both before the reads —
//!   but **broken under PSO**: the buffer may commit `victim` first, let
//!   the rival run a complete passage seeing `flag = 0`, and only then
//!   commit `flag`, after which both processes' wait conditions pass.
//! * With **no** fences it is broken even under TSO.
//!
//! The model checker in the `modelcheck` crate finds these violations
//! exhaustively and prints the traces.
//!
//! ```text
//! Acquire(s):                          // fence sites
//!   write(flag[s], 1); fence           // 0
//!   write(victim, 1+s); fence          // 1
//!   wait until flag[1-s] == 0 or victim != 1+s
//! Release(s):
//!   write(flag[s], 0); fence           // 2
//! ```
//!
//! `victim` carries `1 + s` rather than `s` so that the written values are
//! distinguishable from the initial ⊥ payload.

use fencevm::{Asm, CondOp};
use wbmem::ProcId;

use crate::alloc::RegAlloc;
use crate::fences::FenceMask;
use crate::lock::LockAlgorithm;

/// Fence site after `write(flag[s], 1)`.
pub const SITE_FLAG: u32 = 0;
/// Fence site after `write(victim, 1+s)` — the store–load fence.
pub const SITE_VICTIM: u32 = 1;
/// Fence site after the release write.
pub const SITE_RELEASE: u32 = 2;

/// A Peterson lock instance for two competitor slots.
#[derive(Clone, Debug)]
pub struct Peterson2 {
    flag: [i64; 2],
    victim: i64,
    fences: FenceMask,
}

impl Peterson2 {
    /// Allocate a Peterson instance. `slot_owner(s)` places `flag[s]` in
    /// that process's segment; `victim` is contended and unowned.
    pub fn new(
        alloc: &mut RegAlloc,
        mut slot_owner: impl FnMut(usize) -> Option<ProcId>,
        fences: FenceMask,
    ) -> Self {
        let f0 = alloc.alloc(slot_owner(0));
        let f1 = alloc.alloc(slot_owner(1));
        let victim = alloc.alloc(None);
        Peterson2 {
            flag: [i64::from(f0.0), i64::from(f1.0)],
            victim: i64::from(victim.0),
            fences,
        }
    }

    /// Emit the acquire section for `slot ∈ {0, 1}`.
    pub fn emit_acquire_slot(&self, asm: &mut Asm, slot: usize) {
        assert!(slot < 2, "peterson slot must be 0 or 1");
        let me = 1 + slot as i64;
        let t = asm.local("pet_t");

        asm.write(self.flag[slot], 1i64);
        self.fences.emit(asm, SITE_FLAG);
        asm.write(self.victim, me);
        self.fences.emit(asm, SITE_VICTIM);

        let done = asm.label();
        let spin = asm.here();
        asm.read(self.flag[1 - slot], t);
        asm.jmp_if(CondOp::Eq, t, 0i64, done);
        asm.read(self.victim, t);
        asm.jmp_if(CondOp::Ne, t, me, done);
        asm.jmp(spin);
        asm.bind(done);
    }

    /// Emit the release section for `slot`.
    pub fn emit_release_slot(&self, asm: &mut Asm, slot: usize) {
        assert!(slot < 2, "peterson slot must be 0 or 1");
        asm.write(self.flag[slot], 0i64);
        self.fences.emit(asm, SITE_RELEASE);
    }
}

impl LockAlgorithm for Peterson2 {
    fn n(&self) -> usize {
        2
    }

    fn name(&self) -> String {
        "peterson".into()
    }

    fn emit_acquire(&self, asm: &mut Asm, who: usize) {
        self.emit_acquire_slot(asm, who);
    }

    fn emit_release(&self, asm: &mut Asm, who: usize) {
        self.emit_release_slot(asm, who);
    }

    fn fence_sites(&self) -> u32 {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{build_mutex_programs, run_to_completion};
    use wbmem::{MemoryModel, ProcId, SchedElem};

    fn build(fences: FenceMask) -> crate::instance::OrderingInstance {
        let mut alloc = RegAlloc::new();
        let lock = Peterson2::new(&mut alloc, |s| Some(ProcId::from(s)), fences);
        build_mutex_programs(&lock, alloc)
    }

    #[test]
    fn completes_under_round_robin_all_models() {
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let mut m = build(FenceMask::ALL).machine(model);
            run_to_completion(&mut m, 100_000);
            assert!(m.all_done(), "peterson did not finish under {model}");
        }
    }

    #[test]
    fn single_store_load_fence_violates_mutex_under_pso() {
        // The schedule from the module docs, hand-rolled:
        //   p0: flag0:=1, victim:=1 (both buffered)
        //   system commits victim (reordered past flag0!)
        //   p1: full acquire; sees flag0 == 0 -> in CS
        //   p0: commits flag0; fence; reads flag1=1, victim=2 != 1 -> in CS
        let inst = build(FenceMask::only(&[SITE_VICTIM, SITE_RELEASE]));
        let mut m = inst.machine(MemoryModel::Pso);
        let (p0, p1) = (ProcId(0), ProcId(1));
        // p0 executes its two writes (buffered; fence site 0 is elided).
        m.step(SchedElem::op(p0)); // write flag0
        m.step(SchedElem::op(p0)); // write victim
                                   // Commit victim only — PSO write reordering.
        let victim_reg = wbmem::RegId(2);
        m.step(SchedElem::commit(p0, victim_reg));
        // p1 runs alone through its whole acquire.
        for _ in 0..40 {
            m.step(SchedElem::op(p1));
            if m.annotation(p1) == 1 {
                break;
            }
        }
        assert_eq!(m.annotation(p1), 1, "p1 should be in its critical section");
        // p0 now drains its buffer (flag0), fences, and passes its test.
        for _ in 0..40 {
            m.step(SchedElem::op(p0));
            if m.annotation(p0) == 1 {
                break;
            }
        }
        assert_eq!(
            m.annotation(p0),
            1,
            "p0 entered too: mutual exclusion violated"
        );
        assert_eq!(m.annotation(p1), 1, "while p1 is still inside");
    }

    #[test]
    fn full_fences_resist_the_same_schedule() {
        // The same adversarial schedule cannot break the fully fenced lock:
        // site 0 forces flag0 to commit before victim is even written.
        let inst = build(FenceMask::ALL);
        let mut m = inst.machine(MemoryModel::Pso);
        let (p0, p1) = (ProcId(0), ProcId(1));
        m.step(SchedElem::op(p0)); // write flag0
        m.step(SchedElem::op(p0)); // fence -> commits flag0
        m.step(SchedElem::op(p0)); // fence completes
        m.step(SchedElem::op(p0)); // write victim
                                   // Try the reorder: victim is the only buffered write.
        m.step(SchedElem::commit(p0, wbmem::RegId(2)));
        for _ in 0..40 {
            m.step(SchedElem::op(p1));
            if m.annotation(p1) == 1 {
                break;
            }
        }
        assert_eq!(m.annotation(p1), 0, "p1 must spin: flag0 is visible");
    }
}
