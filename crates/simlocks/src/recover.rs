//! Crash-hardened (recoverable) lock variants.
//!
//! A crash (see [`wbmem::CrashSemantics`]) wipes a process's local state
//! and restarts it at its program's recovery entry — but shared memory
//! keeps whatever the process announced before crashing, minus any writes
//! that were still sitting in its buffer. The naive locks are *crash
//! exposed*: a crash inside the critical section (or one that discards a
//! buffered release write) leaves the lock word or ticket registers
//! claiming a passage that will never complete, wedging every rival.
//!
//! The wrappers here follow the recoverable-mutual-exclusion recipe: a
//! dedicated recovery section first *repairs* the process's shared
//! announcements — self-releasing a held lock word, retracting a stale
//! ticket — and only then re-enters the ordinary acquire path. The repair
//! code is idempotent and uses buffer-draining primitives (CAS, explicit
//! fences), so it is crash-safe itself: crashing during recovery just runs
//! it again.
//!
//! * [`RecoverableTtas`] — TTAS whose recovery CASes the lock word from
//!   `1 + who` back to `0` (a no-op if the crasher did not hold it).
//! * [`RecoverableBakery`] — Bakery whose recovery retracts `C[who]` and
//!   `T[who]` with fences before recompeting.

use fencevm::Asm;
use wbmem::ProcId;

use crate::alloc::RegAlloc;
use crate::bakery::Bakery;
use crate::fences::FenceMask;
use crate::lock::LockAlgorithm;
use crate::tas::TtasLock;

/// A [`TtasLock`] with a crash-recovery section: on restart the process
/// conditionally self-releases the lock word before re-entering acquire.
#[derive(Clone, Debug)]
pub struct RecoverableTtas {
    inner: TtasLock,
}

impl RecoverableTtas {
    /// Allocate a recoverable TTAS for `n` processes.
    pub fn new(alloc: &mut RegAlloc, n: usize, fences: FenceMask) -> Self {
        RecoverableTtas {
            inner: TtasLock::new(alloc, n, fences),
        }
    }
}

impl LockAlgorithm for RecoverableTtas {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn name(&self) -> String {
        format!("r-ttas[{}]", self.inner.n())
    }

    fn emit_acquire(&self, asm: &mut Asm, who: usize) {
        self.inner.emit_acquire(asm, who);
    }

    fn emit_release(&self, asm: &mut Asm, who: usize) {
        self.inner.emit_release(asm, who);
    }

    fn fence_sites(&self) -> u32 {
        self.inner.fence_sites()
    }

    fn has_recovery(&self) -> bool {
        true
    }

    fn emit_recovery(&self, asm: &mut Asm, who: usize) {
        self.inner.emit_self_release(asm, who);
    }
}

/// A [`Bakery`] with a crash-recovery section: on restart the process
/// retracts its doorway flag and ticket (with fences) before recompeting.
#[derive(Clone, Debug)]
pub struct RecoverableBakery {
    inner: Bakery,
}

impl RecoverableBakery {
    /// Allocate a recoverable Bakery for `n` processes; slot `s`'s
    /// registers live in process `s`'s memory segment.
    pub fn new(
        alloc: &mut RegAlloc,
        n: usize,
        slot_owner: impl FnMut(usize) -> Option<ProcId>,
        fences: FenceMask,
    ) -> Self {
        RecoverableBakery {
            inner: Bakery::new(alloc, n, slot_owner, fences),
        }
    }
}

impl LockAlgorithm for RecoverableBakery {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn name(&self) -> String {
        format!("r-bakery[{}]", self.inner.n())
    }

    fn emit_acquire(&self, asm: &mut Asm, who: usize) {
        self.inner.emit_acquire(asm, who);
    }

    fn emit_release(&self, asm: &mut Asm, who: usize) {
        self.inner.emit_release(asm, who);
    }

    fn fence_sites(&self) -> u32 {
        self.inner.fence_sites()
    }

    fn has_recovery(&self) -> bool {
        true
    }

    fn emit_recovery(&self, asm: &mut Asm, who: usize) {
        self.inner.emit_recovery_slot(asm, who);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{build_mutex_programs, ANNOT_IN_CS};
    use wbmem::{CrashSemantics, MachineConfig, MemoryModel, ProcId, SchedElem, SoloOutcome};

    fn crash_machine(
        lock: &dyn LockAlgorithm,
        alloc: RegAlloc,
        model: MemoryModel,
        max_crashes: u32,
    ) -> (crate::OrderingInstance, wbmem::Machine<fencevm::VmProc>) {
        let inst = build_mutex_programs(lock, alloc);
        let cfg = MachineConfig::new(model, inst.layout.clone())
            .with_crashes(CrashSemantics::DiscardBuffer, max_crashes);
        let m = inst.machine_from(cfg);
        (inst, m)
    }

    /// Step `p` until it is inside its critical section.
    fn drive_into_cs(m: &mut wbmem::Machine<fencevm::VmProc>, p: ProcId) {
        for _ in 0..10_000 {
            if m.annotation(p) == ANNOT_IN_CS {
                return;
            }
            m.step(SchedElem::op(p));
        }
        panic!("process {p} never reached its critical section");
    }

    #[test]
    fn naive_ttas_wedges_after_a_crash_in_the_critical_section() {
        let mut alloc = RegAlloc::new();
        let lock = TtasLock::new(&mut alloc, 2, FenceMask::ALL);
        let (_inst, mut m) = crash_machine(&lock, alloc, MemoryModel::Pso, 1);
        drive_into_cs(&mut m, ProcId(0));
        m.step(SchedElem::crash(ProcId(0)));
        assert_eq!(m.counters().proc(0).crashes, 1);
        // The crashed holder restarts at the program entry and spins on its
        // own stale lock word; its rival spins too. Nobody ever finishes.
        assert!(matches!(
            m.solo_outcome(ProcId(0), 100_000),
            SoloOutcome::Diverges { .. }
        ));
        assert!(matches!(
            m.solo_outcome(ProcId(1), 100_000),
            SoloOutcome::Diverges { .. }
        ));
    }

    #[test]
    fn naive_ttas_loses_a_buffered_release_write() {
        // Drive p0 through its whole passage up to (and including) the
        // release write, which parks in the buffer under PSO. The crash
        // discards it, so the lock word stays held forever.
        let mut alloc = RegAlloc::new();
        let lock = TtasLock::new(&mut alloc, 2, FenceMask::ALL);
        let (_inst, mut m) = crash_machine(&lock, alloc, MemoryModel::Pso, 1);
        drive_into_cs(&mut m, ProcId(0));
        for _ in 0..10_000 {
            if m.annotation(ProcId(0)) != ANNOT_IN_CS {
                break;
            }
            m.step(SchedElem::op(ProcId(0)));
        }
        // p0 is now poised at the release write: perform it (buffered).
        m.step(SchedElem::op(ProcId(0)));
        m.step(SchedElem::crash(ProcId(0)));
        // p1 can never acquire: the release write died in the buffer.
        assert!(matches!(
            m.solo_outcome(ProcId(1), 100_000),
            SoloOutcome::Diverges { .. }
        ));
    }

    #[test]
    fn recoverable_ttas_survives_a_crash_in_the_critical_section() {
        let mut alloc = RegAlloc::new();
        let lock = RecoverableTtas::new(&mut alloc, 2, FenceMask::ALL);
        let (_inst, mut m) = crash_machine(&lock, alloc, MemoryModel::Pso, 1);
        drive_into_cs(&mut m, ProcId(0));
        m.step(SchedElem::crash(ProcId(0)));
        // Recovery self-releases, re-acquires, and completes; the rival
        // then completes too.
        assert!(matches!(
            m.run_solo(ProcId(0), 100_000),
            SoloOutcome::Terminates { .. }
        ));
        assert!(matches!(
            m.run_solo(ProcId(1), 100_000),
            SoloOutcome::Terminates { .. }
        ));
    }

    #[test]
    fn recoverable_bakery_retracts_a_stale_ticket() {
        let mut alloc = RegAlloc::new();
        let lock = RecoverableBakery::new(&mut alloc, 2, |s| Some(ProcId::from(s)), FenceMask::ALL);
        let (_inst, mut m) = crash_machine(&lock, alloc, MemoryModel::Pso, 1);
        drive_into_cs(&mut m, ProcId(0));
        m.step(SchedElem::crash(ProcId(0)));
        assert!(matches!(
            m.run_solo(ProcId(0), 100_000),
            SoloOutcome::Terminates { .. }
        ));
        assert!(matches!(
            m.run_solo(ProcId(1), 100_000),
            SoloOutcome::Terminates { .. }
        ));
    }

    #[test]
    fn recoverable_locks_behave_normally_without_crashes() {
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let mut alloc = RegAlloc::new();
            let lock = RecoverableTtas::new(&mut alloc, 3, FenceMask::ALL);
            let inst = build_mutex_programs(&lock, alloc);
            let rets = inst.run_sequential(model, 100_000);
            assert_eq!(rets, vec![0, 0, 0], "under {model}");
        }
        let mut alloc = RegAlloc::new();
        let lock = RecoverableBakery::new(&mut alloc, 3, |s| Some(ProcId::from(s)), FenceMask::ALL);
        let inst = build_mutex_programs(&lock, alloc);
        assert_eq!(inst.run_sequential(MemoryModel::Pso, 100_000), vec![0; 3]);
    }

    #[test]
    fn recovery_is_idempotent_under_repeated_crashes() {
        // Crash twice in a row (once mid-recovery): the repair code must
        // tolerate re-execution.
        let mut alloc = RegAlloc::new();
        let lock = RecoverableTtas::new(&mut alloc, 2, FenceMask::ALL);
        let (_inst, mut m) = crash_machine(&lock, alloc, MemoryModel::Pso, 2);
        drive_into_cs(&mut m, ProcId(0));
        m.step(SchedElem::crash(ProcId(0)));
        m.step(SchedElem::crash(ProcId(0)));
        assert_eq!(m.counters().proc(0).crashes, 2);
        assert!(matches!(
            m.run_solo(ProcId(0), 100_000),
            SoloOutcome::Terminates { .. }
        ));
        assert!(matches!(
            m.run_solo(ProcId(1), 100_000),
            SoloOutcome::Terminates { .. }
        ));
    }

    #[test]
    fn names_mark_the_recoverable_variants() {
        let mut alloc = RegAlloc::new();
        let t = RecoverableTtas::new(&mut alloc, 2, FenceMask::ALL);
        assert_eq!(t.name(), "r-ttas[2]");
        assert!(t.has_recovery());
        let b = RecoverableBakery::new(&mut alloc, 2, |_| None, FenceMask::ALL);
        assert_eq!(b.name(), "r-bakery[2]");
        assert!(b.has_recovery());
    }
}
