//! Test-and-test-and-set lock — the comparison-primitive extension.
//!
//! The paper's §6 notes the lower bound also covers algorithms using
//! comparison primitives such as CAS. This lock is the canonical CAS-based
//! mutex: spin on a local-cache read of the lock word, then try to claim it
//! with a CAS.
//!
//! ```text
//! Acquire(i):
//!   repeat:
//!     wait until L == 0            // test (cache-local spinning)
//!     if CAS(L, 0, 1+i) == 0: done // and-set
//! Release(i):
//!   write(L, 0); fence             // site 0
//! ```
//!
//! Per solo passage: **zero explicit fences** in acquire (the CAS drains
//! the write buffer itself) and O(1) RMRs. But strong primitives don't
//! escape the contention costs the tradeoff is about: under contention
//! every release invalidates every spinner's cached copy of `L`, so a
//! passage costs Θ(n) RMRs in the CC model — experiment E9 measures
//! exactly that against `GT_f`'s O(f·n^(1/f)).

use fencevm::{Asm, CondOp};

use crate::alloc::RegAlloc;
use crate::fences::FenceMask;
use crate::lock::LockAlgorithm;

/// Fence site after the release write.
pub const SITE_RELEASE: u32 = 0;

/// A test-and-test-and-set lock for any number of processes.
#[derive(Clone, Debug)]
pub struct TtasLock {
    n: usize,
    lock_reg: i64,
    fences: FenceMask,
}

impl TtasLock {
    /// Allocate the lock word (contended by everyone, hence unowned).
    pub fn new(alloc: &mut RegAlloc, n: usize, fences: FenceMask) -> Self {
        assert!(n >= 1, "need at least one process");
        let lock_reg = alloc.alloc(None);
        TtasLock {
            n,
            lock_reg: i64::from(lock_reg.0),
            fences,
        }
    }

    /// Emit a conditional self-release: CAS the lock word from `1 + who`
    /// back to `0`. A no-op (failed CAS) when the process did not hold the
    /// lock; the building block of [`RecoverableTtas`]'s crash recovery.
    ///
    /// [`RecoverableTtas`]: crate::RecoverableTtas
    pub fn emit_self_release(&self, asm: &mut Asm, who: usize) {
        assert!(who < self.n, "process {who} out of range");
        let t = asm.local("ttas_rec");
        asm.cas(self.lock_reg, 1 + who as i64, 0i64, t);
    }
}

impl LockAlgorithm for TtasLock {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!("ttas[{}]", self.n)
    }

    fn emit_acquire(&self, asm: &mut Asm, who: usize) {
        assert!(who < self.n, "process {who} out of range");
        let t = asm.local("ttas_t");
        let spin = asm.here();
        asm.read(self.lock_reg, t);
        asm.jmp_if(CondOp::Ne, t, 0i64, spin);
        asm.cas(self.lock_reg, 0i64, 1 + who as i64, t);
        asm.jmp_if(CondOp::Ne, t, 0i64, spin);
    }

    fn emit_release(&self, asm: &mut Asm, who: usize) {
        assert!(who < self.n, "process {who} out of range");
        asm.write(self.lock_reg, 0i64);
        self.fences.emit(asm, SITE_RELEASE);
    }

    fn fence_sites(&self) -> u32 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{build_mutex_programs, build_object, run_to_completion};
    use crate::objects::ObjectKind;
    use wbmem::{MemoryModel, ProcId, SoloOutcome};

    fn counter_instance(n: usize) -> crate::instance::OrderingInstance {
        let mut alloc = RegAlloc::new();
        let lock = TtasLock::new(&mut alloc, n, FenceMask::ALL);
        build_object(&lock, alloc, ObjectKind::Counter)
    }

    #[test]
    fn solo_passage_is_constant_cost() {
        for n in [2usize, 16, 256] {
            let inst = counter_instance(n);
            let mut m = inst.machine(MemoryModel::Pso);
            let out = m.run_solo(ProcId(0), 100_000);
            assert!(matches!(out, SoloOutcome::Terminates { .. }));
            let c = m.counters().proc(0);
            assert_eq!(c.fences, 3, "release + object + final fence only (n={n})");
            assert_eq!(c.cas_ops, 1);
            // O(1) RMRs, independent of n.
            assert!(c.rmrs <= 6, "rmrs={} n={n}", c.rmrs);
        }
    }

    #[test]
    fn counter_completes_and_orders_under_every_model() {
        let inst = counter_instance(4);
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let rets = inst.run_sequential(model, 100_000);
            assert_eq!(rets, vec![0, 1, 2, 3], "under {model}");
            let mut m = inst.machine(model);
            assert!(run_to_completion(&mut m, 10_000_000));
            let mut all: Vec<u64> = m.return_values().into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn mutex_program_builds_and_runs() {
        let mut alloc = RegAlloc::new();
        let lock = TtasLock::new(&mut alloc, 3, FenceMask::ALL);
        let built = build_mutex_programs(&lock, alloc);
        let mut m = built.machine(MemoryModel::Pso);
        assert!(run_to_completion(&mut m, 1_000_000));
    }
}
