//! The binary tournament-tree lock (Peterson–Fischer / Yang–Anderson
//! style): the `f = log n` extreme of the tradeoff.
//!
//! `n` processes (a power of two) are leaves of a complete binary tree; each
//! internal node holds a two-slot Peterson lock. A process acquires the
//! Peterson locks on the path from its leaf to the root (side = the child it
//! came from) and releases them top-down. Per passage: Θ(log n) fences and
//! Θ(log n) RMRs — so `f·(log(r/f)+1) = Θ(log n)`, matching the lower bound
//! at the other end of the spectrum from Bakery.

use fencevm::Asm;
use wbmem::ProcId;

use crate::alloc::RegAlloc;
use crate::fences::FenceMask;
use crate::lock::LockAlgorithm;
use crate::peterson::Peterson2;

/// A binary tournament tree of Peterson locks for `n = 2^k` processes.
#[derive(Clone, Debug)]
pub struct Tournament {
    n: usize,
    /// `nodes[v]` for `v in 1..n` is the Peterson lock at heap-indexed
    /// internal node `v` (root = 1). Index 0 is unused.
    nodes: Vec<Option<Peterson2>>,
}

impl Tournament {
    /// Build the tree. At the lowest level each Peterson side is used by
    /// exactly one process, so its flag register is placed in that process's
    /// memory segment; all other node registers are unowned.
    pub fn new(alloc: &mut RegAlloc, n: usize, fences: FenceMask) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "tournament needs a power-of-two n >= 2"
        );
        // users[v][s] = processes that acquire node v from side s.
        let mut users = vec![[Vec::new(), Vec::new()]; n];
        for i in 0..n {
            let mut v = n + i;
            while v > 1 {
                let side = v & 1;
                v >>= 1;
                users[v][side].push(i);
            }
        }
        let mut nodes = vec![None; n];
        for (v, node_users) in users.iter().enumerate().skip(1) {
            let owner = |s: usize| {
                if node_users[s].len() == 1 {
                    Some(ProcId::from(node_users[s][0]))
                } else {
                    None
                }
            };
            nodes[v] = Some(Peterson2::new(alloc, owner, fences));
        }
        Tournament { n, nodes }
    }

    /// Process `who`'s root-ward path: `(node, side)` pairs from its leaf's
    /// parent up to the root.
    fn path(&self, who: usize) -> Vec<(usize, usize)> {
        assert!(who < self.n, "process {who} out of range");
        let mut path = Vec::new();
        let mut v = self.n + who;
        while v > 1 {
            let side = v & 1;
            v >>= 1;
            path.push((v, side));
        }
        path
    }
}

impl LockAlgorithm for Tournament {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!("tournament[{}]", self.n)
    }

    fn emit_acquire(&self, asm: &mut Asm, who: usize) {
        for (v, side) in self.path(who) {
            self.nodes[v]
                .as_ref()
                .expect("internal node exists")
                .emit_acquire_slot(asm, side);
        }
    }

    fn emit_release(&self, asm: &mut Asm, who: usize) {
        // Top-down: the root was acquired last, release it first.
        for (v, side) in self.path(who).into_iter().rev() {
            self.nodes[v]
                .as_ref()
                .expect("internal node exists")
                .emit_release_slot(asm, side);
        }
    }

    fn fence_sites(&self) -> u32 {
        3 // Peterson's sites, applied at every node.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{build_mutex_programs, run_to_completion};
    use wbmem::{MemoryModel, ProcId, SoloOutcome};

    #[test]
    fn solo_passage_is_logarithmic_in_fences_and_rmrs() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let levels = n.trailing_zeros() as u64;
            let mut alloc = RegAlloc::new();
            let lock = Tournament::new(&mut alloc, n, FenceMask::ALL);
            let built = build_mutex_programs(&lock, alloc);
            let mut m = built.machine(MemoryModel::Pso);
            let out = m.run_solo(ProcId(0), 100_000);
            assert!(matches!(out, SoloOutcome::Terminates { .. }));
            let c = m.counters().proc(0);
            assert_eq!(
                c.fences,
                3 * levels + 1,
                "2 acquire + 1 release fence per level, plus the final fence (n={n})"
            );
            assert!(c.rmrs <= 6 * levels + 2, "rmrs={} n={n}", c.rmrs);
        }
    }

    #[test]
    fn completes_under_round_robin_every_model() {
        let mut alloc = RegAlloc::new();
        let lock = Tournament::new(&mut alloc, 8, FenceMask::ALL);
        let built = build_mutex_programs(&lock, alloc);
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let mut m = built.machine(model);
            run_to_completion(&mut m, 5_000_000);
            assert!(m.all_done(), "tournament[8] did not finish under {model}");
        }
    }

    #[test]
    fn paths_reach_the_root() {
        let mut alloc = RegAlloc::new();
        let lock = Tournament::new(&mut alloc, 8, FenceMask::ALL);
        for who in 0..8 {
            let path = lock.path(who);
            assert_eq!(path.len(), 3);
            assert_eq!(path.last().unwrap().0, 1, "last node is the root");
        }
        // Siblings share their lowest node from opposite sides.
        assert_eq!(lock.path(0)[0].0, lock.path(1)[0].0);
        assert_ne!(lock.path(0)[0].1, lock.path(1)[0].1);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let mut alloc = RegAlloc::new();
        let _ = Tournament::new(&mut alloc, 6, FenceMask::ALL);
    }
}
