//! First-come-first-served fairness of the Bakery lock, checked over
//! recorded traces: if process `p` completes its doorway (the commit of
//! `C[p] := 0`) before process `q` *begins* its doorway (the write step of
//! `C[q] := 1`), then `p` enters the critical section before `q`.
//!
//! FCFS is Bakery's signature property and a behavioural regression guard
//! on the doorway order fix (ticket published inside the doorway).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use simlocks::{build_ordering, run_to_completion, LockKind, ObjectKind};
use wbmem::{EventKind, MachineConfig, MemoryModel, RegId, Trace, Value};

/// Timeline milestones per process, as trace indices.
#[derive(Debug, Default, Clone, Copy)]
struct Milestones {
    doorway_start: Option<usize>,
    doorway_end: Option<usize>,
    cs_entry: Option<usize>,
}

/// Extract per-process milestones from a Bakery-counter trace.
///
/// Register layout of `build_ordering(Bakery, n, Counter)`: `C[i] = i`,
/// `T[i] = n + i`, counter = `2n`. Doorway start = first `Write C[i] := 1`
/// step; doorway end = first `Commit C[i] := 0`; CS entry = first read of
/// the counter register.
fn milestones(trace: &Trace, n: usize) -> Vec<Milestones> {
    let counter_reg = RegId(2 * n as u32);
    let mut ms = vec![Milestones::default(); n];
    for (i, event) in trace.events().iter().enumerate() {
        let p = event.proc.index();
        let slot = &mut ms[p];
        match &event.kind {
            EventKind::Write { reg, value }
                if *reg == RegId(p as u32)
                    && value.payload() == 1
                    && slot.doorway_start.is_none() =>
            {
                slot.doorway_start = Some(i);
            }
            EventKind::Commit { reg, value, .. }
                if *reg == RegId(p as u32)
                    && value.payload() == 0
                    && slot.doorway_end.is_none() =>
            {
                slot.doorway_end = Some(i);
            }
            EventKind::Read { reg, .. } if *reg == counter_reg && slot.cs_entry.is_none() => {
                slot.cs_entry = Some(i);
            }
            _ => {}
        }
    }
    ms
}

fn assert_fcfs(trace: &Trace, n: usize) {
    let ms = milestones(trace, n);
    for p in 0..n {
        for q in 0..n {
            if p == q {
                continue;
            }
            let (Some(p_done), Some(q_start)) = (ms[p].doorway_end, ms[q].doorway_start) else {
                continue;
            };
            if p_done < q_start {
                let (Some(p_cs), Some(q_cs)) = (ms[p].cs_entry, ms[q].cs_entry) else {
                    continue;
                };
                assert!(
                    p_cs < q_cs,
                    "FCFS violated: p{p} finished its doorway (step {p_done}) before \
                     p{q} started (step {q_start}), yet entered the CS later \
                     ({p_cs} vs {q_cs})"
                );
            }
        }
    }
}

fn traced_machine(
    n: usize,
    model: MemoryModel,
) -> (simlocks::OrderingInstance, wbmem::Machine<fencevm::VmProc>) {
    let inst = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
    let cfg = MachineConfig::new(model, inst.layout.clone()).with_trace();
    let m = inst.machine_from(cfg);
    (inst, m)
}

#[test]
fn bakery_is_fcfs_under_round_robin() {
    for n in [2usize, 3, 5] {
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let (inst, mut m) = traced_machine(n, model);
            assert!(run_to_completion(&mut m, 20_000_000), "{} stuck", inst.name);
            assert_fcfs(m.trace(), n);
        }
    }
}

#[test]
fn bakery_is_fcfs_under_random_adversaries() {
    let mut rng = SmallRng::seed_from_u64(0xFCF5);
    for _ in 0..20 {
        let n = rng.gen_range(2..5);
        let (inst, mut m) = traced_machine(n, MemoryModel::Pso);
        // Random walk over enabled choices until completion (bounded).
        for _ in 0..400_000 {
            let choices = m.choices();
            if choices.is_empty() {
                break;
            }
            let pick = choices[rng.gen_range(0..choices.len())];
            m.step(pick);
        }
        if !m.all_done() {
            // A random walk may simply not have finished; fairness of the
            // walk isn't guaranteed. Check what we have.
            let _ = &inst;
        }
        assert_fcfs(m.trace(), n);
    }
}

#[test]
fn milestones_are_extracted_sanely() {
    let (_, mut m) = traced_machine(2, MemoryModel::Pso);
    assert!(run_to_completion(&mut m, 1_000_000));
    let ms = milestones(m.trace(), 2);
    for (i, s) in ms.iter().enumerate() {
        assert!(s.doorway_start.is_some(), "p{i} doorway start missing");
        assert!(s.doorway_end.is_some(), "p{i} doorway end missing");
        assert!(s.cs_entry.is_some(), "p{i} CS entry missing");
        assert!(s.doorway_start < s.doorway_end);
        assert!(s.doorway_end < s.cs_entry);
    }
    // The counter register is where we think it is.
    assert_eq!(m.memory(RegId(4)).payload(), 2, "counter ends at n");
    let _ = Value::Bot;
}
