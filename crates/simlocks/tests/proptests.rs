//! Property-based tests for the lock family: ordering, mutual exclusion,
//! and cost-shape properties under randomized parameters and schedules.

use proptest::prelude::*;

use simlocks::{build_mutex, build_ordering, FenceMask, LockKind, ObjectKind, ANNOT_IN_CS};
use wbmem::{MemoryModel, ProcId};

fn arb_kind(n: usize) -> impl Strategy<Value = LockKind> {
    let mut kinds = vec![LockKind::Bakery, LockKind::Gt { f: 2 }, LockKind::Ttas];
    if n >= 4 {
        kinds.push(LockKind::Gt { f: 3 });
    }
    if n.is_power_of_two() && n >= 2 {
        kinds.push(LockKind::Tournament);
    }
    prop::sample::select(kinds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential executions of any ordering object over any lock return
    /// exactly the ranks 0..n-1, under every memory model.
    #[test]
    fn sequential_ordering_property(
        n in 2usize..7,
        object in prop::sample::select(vec![
            ObjectKind::Counter,
            ObjectKind::Queue,
            ObjectKind::FetchIncrement,
            ObjectKind::NoisyCounter,
        ]),
        model in prop::sample::select(vec![MemoryModel::Tso, MemoryModel::Pso]),
        kind_seed in any::<prop::sample::Index>(),
    ) {
        let kinds = [LockKind::Bakery, LockKind::Gt { f: 2 }];
        let kind = kinds[kind_seed.index(kinds.len())];
        let inst = build_ordering(kind, n, object);
        let rets = inst.run_sequential(model, 2_000_000);
        prop_assert_eq!(rets, (0..n as u64).collect::<Vec<u64>>());
    }

    /// Under arbitrary schedules (random choice of enabled process step or
    /// commit each turn), mutual exclusion is never violated for fully
    /// fenced locks.
    #[test]
    fn random_schedules_preserve_mutex(
        n in 2usize..5,
        picks in prop::collection::vec(any::<prop::sample::Index>(), 0..4000),
        model in prop::sample::select(vec![MemoryModel::Tso, MemoryModel::Pso]),
    ) {
        let kind = if n.is_power_of_two() { LockKind::Tournament } else { LockKind::Gt { f: 2 } };
        let inst = build_mutex(kind, n, FenceMask::ALL);
        let mut m = inst.machine(model);
        for pick in picks {
            let choices = m.choices();
            if choices.is_empty() {
                break;
            }
            m.step(choices[pick.index(choices.len())]);
            let in_cs = (0..n)
                .filter(|&i| m.annotation(ProcId::from(i)) == ANNOT_IN_CS)
                .count();
            prop_assert!(in_cs <= 1, "mutex violated for {} under {}", inst.name, model);
        }
    }

    /// Contended completions always return a permutation of ranks.
    #[test]
    fn round_robin_returns_permutation(
        (n, kind) in (2usize..7).prop_flat_map(|n| (Just(n), arb_kind(n))),
    ) {
        let inst = build_ordering(kind, n, ObjectKind::Counter);
        let mut m = inst.machine(MemoryModel::Pso);
        prop_assert!(simlocks::run_to_completion(&mut m, 50_000_000), "{} stuck", inst.name);
        let mut rets: Vec<u64> = m.return_values().into_iter().flatten().collect();
        rets.sort_unstable();
        prop_assert_eq!(rets, (0..n as u64).collect::<Vec<u64>>());
    }

    /// GT cost shape: for any (n, f), a solo passage has exactly 4f+2
    /// fences and at most O(f·b) RMRs.
    #[test]
    fn gt_solo_cost_shape(n in 2usize..80, f in 1usize..6) {
        let inst = build_ordering(LockKind::Gt { f }, n, ObjectKind::Counter);
        let mut m = inst.machine(MemoryModel::Pso);
        let out = m.run_solo(ProcId(0), 10_000_000);
        let terminated = matches!(out, wbmem::SoloOutcome::Terminates { .. });
        prop_assert!(terminated);
        let c = m.counters().proc(0);
        prop_assert_eq!(c.fences, 4 * f as u64 + 2);
        let b = simlocks::branching_factor(n, f) as u64;
        prop_assert!(c.rmrs <= (f as u64) * (6 * b + 8), "rmrs={} f={} b={}", c.rmrs, f, b);
    }
}
