//! Walkthrough: synthesize a fence placement for Peterson's lock from
//! scratch and inspect the artifacts the CEGAR loop leaves behind.
//!
//! ```text
//! cargo run --release -p ftsynth --example synthesis
//! ```

use ftsynth::{strip_instance, synthesize, SynthConfig};
use modelcheck::{check, CheckConfig, Engine};
use simlocks::{build_mutex, FenceMask, LockKind};
use wbmem::MemoryModel;

fn main() {
    // Start from the hand-fenced lock — synthesis strips the fences
    // itself, so the input placement is never consulted.
    let input = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
    let baseline = strip_instance(&input);
    println!("baseline (every fence stripped):");
    for p in &baseline.programs {
        println!("{p}");
    }

    // Without fences the lock is broken under PSO.
    let dpor = CheckConfig::default().with_engine(Engine::Dpor {
        reorder_bound: None,
    });
    let v = check(&baseline.machine(MemoryModel::Pso), &dpor);
    println!("fence-free baseline under PSO: {}\n", v.label());

    // Synthesize: PSO and TSO must both come back clean.
    let cfg = SynthConfig {
        models: vec![MemoryModel::Pso, MemoryModel::Tso],
        ..SynthConfig::default()
    };
    let out = synthesize(&input, &cfg);
    let s = out.synthesis().expect("peterson synthesizes");

    println!(
        "synthesized {} fence(s) in {} CEGAR iteration(s), {} states explored",
        s.fences_inserted(),
        s.iterations,
        s.total_states
    );
    println!(
        "placement (baseline pcs that received a fence): {:?}",
        s.placement
    );
    for (i, core) in s.cores.iter().enumerate() {
        let sites: Vec<String> = core.iter().map(ToString::to_string).collect();
        println!("core {i}: {{{}}}", sites.join(", "));
    }
    println!("\nsynthesized programs:");
    for p in &s.instance.programs {
        println!("{p}");
    }

    // The final placement re-verifies under every model (this is what
    // `synthesize` itself accepted on — shown here for the reader).
    for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
        let v = check(&s.instance.machine(model), &dpor);
        println!("synthesized under {model}: {}", v.label());
    }
}
