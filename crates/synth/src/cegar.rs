//! The counterexample-guided fence-synthesis loop.
//!
//! Given an algorithm instance, [`synthesize`] discovers a fence placement
//! that makes it correct under the configured memory models:
//!
//! 1. **Strip** every fence from the input programs
//!    ([`fencevm::strip_fences`]) to obtain the baseline — the same
//!    algorithm with no ordering enforced beyond what CAS/swap imply.
//! 2. **Check** the current candidate (baseline + placement) under each
//!    model with the configured engine
//!    ([`modelcheck::check_under_models`]); budgets, crash bounds and
//!    checkpoint policies all pass straight through `CheckConfig`.
//! 3. On a violation, **replay** the counterexample on the unreduced
//!    machine and extract its reorder edges ([`wbmem::reorder_edges`]) —
//!    the program-order inversions that enabled the bad interleaving.
//!    Each edge's candidate pcs are translated back to baseline indices
//!    through the insertion pc-map and unioned into a **core**: fencing
//!    any member site kills this counterexample.
//! 4. Choose the next placement as a minimum-weight **hitting set** over
//!    all accumulated cores ([`crate::hitting_set`]), weighting sites by
//!    fence cost plus an RMR surcharge for stores to remote registers, and
//!    breaking ties toward registers with high cross-process conflict
//!    counts ([`por::conflict_counts`]). Repeat from 2.
//! 5. Once safe, optionally **minimize**: drop any fence whose removal
//!    keeps every model clean. The result is 1-minimal — removing any
//!    single synthesized fence reintroduces a violation — which the
//!    differential test suite exploits as a minimality witness.
//!
//! ### Invariants
//!
//! * Every core is *sound*: each member site, if fenced, provably breaks
//!   the counterexample it came from (the fence drains the overtaken write
//!   before the overtaking access runs). Missing candidates only cost
//!   optimality, never correctness.
//! * A new core is never already hit by the placement it was found under —
//!   a fenced store cannot appear as a pending overtaken write, because
//!   the fence right after it drains the buffer before the process
//!   advances. Each iteration therefore makes progress.
//! * Acceptance rests **only** on the final full re-check; cores, weights
//!   and rankings are heuristics that steer the search.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use fencevm::{insert_fences_after, strip_fences, Instr, Rewritten, Src};
use ftobs::{Metric, Recorder, J};
use modelcheck::{all_ok, check_under_models, CheckConfig, Engine, ModelVerdict};
use simlocks::OrderingInstance;
use wbmem::{reorder_edges, CrashSemantics, MemoryModel, ProcId, RegId};

use crate::hitting::{hitting_set, Core, Site};

/// Configuration for [`synthesize`].
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Memory models the placement must be correct under, checked in
    /// order — put the weakest (most violation-prone) first so refinement
    /// counterexamples surface fastest.
    pub models: Vec<MemoryModel>,
    /// Engine for the inner checks (`Dpor` by default; `ParallelDpor` for
    /// big instances).
    pub engine: Engine,
    /// State cap per inner check.
    pub max_states: usize,
    /// Whether inner checks also require termination. On by default:
    /// a placement that omits the trailing drain fence lets a process
    /// return with its exit write still buffered — the write is orphaned
    /// (committing is only schedulable before `ret`), the lock word never
    /// clears, and every other process spins forever. Termination
    /// counterexamples carry the same reorder edges as mutex ones (a
    /// `Return` with pending writes is an overtaking edge), so the CEGAR
    /// loop repairs both properties with one mechanism.
    pub check_termination: bool,
    /// Crash-fault bound for the inner checks (0 = no crashes).
    pub max_crashes: u32,
    /// Crash semantics when `max_crashes > 0`.
    pub crash_semantics: CrashSemantics,
    /// Refinement iteration cap.
    pub max_iters: usize,
    /// Cost of enabling any fence site (the Pareto explorer sweeps this
    /// against `rmr_weight`).
    pub fence_weight: u64,
    /// Surcharge for fencing a store whose target register is remote to
    /// the storing process (the forced commit is an RMR).
    pub rmr_weight: u64,
    /// Run the 1-minimality pass after the first safe placement.
    pub minimize: bool,
    /// Use exact branch-and-bound when the site universe is at most this
    /// large.
    pub exact_limit: usize,
    /// Recorder for `synth_iterations` / `fences_inserted` / `core_size`
    /// metrics.
    pub recorder: Recorder,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            models: vec![MemoryModel::Pso, MemoryModel::Tso],
            engine: Engine::Dpor {
                reorder_bound: None,
            },
            max_states: 2_000_000,
            check_termination: true,
            max_crashes: 0,
            crash_semantics: CrashSemantics::DiscardBuffer,
            max_iters: 64,
            fence_weight: 4,
            rmr_weight: 1,
            minimize: true,
            exact_limit: 16,
            recorder: Recorder::disabled(),
        }
    }
}

impl SynthConfig {
    // The recorder is deliberately NOT threaded into the inner checks:
    // the checker emits its own per-engine snapshot events, which would
    // shadow the synthesis-level rollup in `obs_report` with partially
    // updated duplicates. Inner-check volume is reported as
    // `Synthesis::total_states` instead.
    fn check_config(&self) -> CheckConfig {
        let mut cfg = CheckConfig::default().with_engine(self.engine);
        cfg.max_states = self.max_states;
        cfg.check_termination = self.check_termination;
        if self.max_crashes > 0 {
            cfg = cfg.with_crashes(self.crash_semantics, self.max_crashes);
        }
        cfg
    }
}

/// A successful synthesis: the placement and the artifacts that justify it.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// The synthesized instance (baseline programs + placement fences).
    pub instance: OrderingInstance,
    /// The fence-free baseline the placement is relative to.
    pub baseline: OrderingInstance,
    /// Per-process baseline pcs that received a fence, sorted.
    pub placement: Vec<Vec<usize>>,
    /// Refinement iterations used (number of full multi-model checks).
    pub iterations: usize,
    /// Accumulated counterexample cores, in discovery order.
    pub cores: Vec<Core>,
    /// Total states explored across every inner check.
    pub total_states: usize,
}

impl Synthesis {
    /// Number of fences the placement inserts.
    #[must_use]
    pub fn fences_inserted(&self) -> usize {
        self.placement.iter().map(Vec::len).sum()
    }

    /// The placement as flat [`Site`]s.
    #[must_use]
    pub fn sites(&self) -> Vec<Site> {
        self.placement
            .iter()
            .enumerate()
            .flat_map(|(proc, pcs)| pcs.iter().map(move |&pc| Site { proc, pc }))
            .collect()
    }
}

/// Why synthesis stopped without a placement.
#[derive(Clone, Debug)]
pub enum SynthOutcome {
    /// A correct placement was found.
    Synthesized(Box<Synthesis>),
    /// A counterexample yielded no reorder edges: the violation survives
    /// even in program order, so no fence placement can repair it (the
    /// algorithm is broken under SC, or the property is simply false).
    Unfixable {
        /// Model the unfixable violation was found under.
        model: MemoryModel,
        /// Verdict label of that violation.
        verdict: &'static str,
    },
    /// The iteration cap was reached, or an inner check came back
    /// inconclusive (state cap / budget) so no counterexample was
    /// available to refine with.
    Exhausted {
        /// Iterations completed.
        iterations: usize,
        /// Label of the last non-ok verdict seen.
        last_verdict: &'static str,
    },
}

impl SynthOutcome {
    /// The synthesis, if one was found.
    #[must_use]
    pub fn synthesis(&self) -> Option<&Synthesis> {
        match self {
            SynthOutcome::Synthesized(s) => Some(s),
            _ => None,
        }
    }
}

/// Strip `inst`'s fences and return the baseline instance.
#[must_use]
pub fn strip_instance(inst: &OrderingInstance) -> OrderingInstance {
    let mut baseline = inst.clone();
    baseline.programs = inst
        .programs
        .iter()
        .map(|p| Arc::new(strip_fences(p).program))
        .collect();
    baseline
}

/// Build the candidate instance for `placement` (per-process baseline pcs)
/// and return it with the per-process pc maps.
fn build_candidate(
    baseline: &OrderingInstance,
    placement: &[Vec<usize>],
) -> (OrderingInstance, Vec<Rewritten>) {
    let rewrites: Vec<Rewritten> = baseline
        .programs
        .iter()
        .zip(placement)
        .map(|(p, after)| insert_fences_after(p, after))
        .collect();
    let mut inst = baseline.clone();
    inst.programs = rewrites
        .iter()
        .map(|r| Arc::new(r.program.clone()))
        .collect();
    (inst, rewrites)
}

/// The register a `Write` at `pc` stores to, if statically known.
fn write_target(inst: &OrderingInstance, proc: usize, pc: usize) -> Option<RegId> {
    match inst.programs[proc].instrs().get(pc) {
        Some(Instr::Write {
            addr: Src::Imm(r), ..
        }) => u32::try_from(*r).ok().map(RegId),
        _ => None,
    }
}

/// Site weight: fence cost plus an RMR surcharge for remote stores.
fn site_weight(cfg: &SynthConfig, baseline: &OrderingInstance, site: Site) -> u64 {
    let remote = write_target(baseline, site.proc, site.pc)
        .and_then(|reg| baseline.layout.owner(reg))
        .is_some_and(|owner| owner != ProcId(site.proc as u32));
    cfg.fence_weight + if remote { cfg.rmr_weight } else { 0 }
}

/// Synthesize a fence placement for `inst` under `cfg` (see module docs).
#[must_use]
pub fn synthesize(inst: &OrderingInstance, cfg: &SynthConfig) -> SynthOutcome {
    // The `synth` span brackets the whole CEGAR run; every `cegar_iter`
    // span (and the model checks under it) nests inside via the
    // trace-root handoff.
    let mut tctx = cfg.recorder.trace_ctx();
    let span = tctx.begin();
    let span_parent = cfg.recorder.trace_root();
    if tctx.enabled() {
        let _ = cfg.recorder.set_trace_root(span.id);
    }
    let out = synthesize_inner(inst, cfg);
    if tctx.enabled() {
        let _ = cfg.recorder.set_trace_root(span_parent);
        let (outcome, iters) = match &out {
            SynthOutcome::Synthesized(syn) => ("synthesized", syn.iterations),
            SynthOutcome::Unfixable { .. } => ("unfixable", 0),
            SynthOutcome::Exhausted { iterations, .. } => ("exhausted", *iterations),
        };
        tctx.end(
            span,
            "synth",
            span_parent,
            &[
                ("outcome", J::s(outcome)),
                ("iterations", J::U(iters as u64)),
            ],
        );
        tctx.flush();
    }
    out
}

fn synthesize_inner(inst: &OrderingInstance, cfg: &SynthConfig) -> SynthOutcome {
    let baseline = strip_instance(inst);
    let n = baseline.n;
    let check_cfg = cfg.check_config();
    let mut cores: Vec<Core> = Vec::new();
    let mut weights: BTreeMap<Site, u64> = BTreeMap::new();
    let mut tiebreak: BTreeMap<Site, u64> = BTreeMap::new();
    let mut placement: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut total_states = 0usize;
    let mut last_verdict = "ok";

    let mut tctx = cfg.recorder.trace_ctx();
    for iteration in 1..=cfg.max_iters {
        // The span covers the candidate build plus the multi-model check
        // (where the iteration's wall time goes); refinement bookkeeping
        // after it is negligible and would tangle the early returns.
        let ispan = tctx.begin();
        let iter_parent = cfg.recorder.trace_root();
        if tctx.enabled() {
            let _ = cfg.recorder.set_trace_root(ispan.id);
        }
        let (candidate, rewrites) = build_candidate(&baseline, &placement);
        let verdicts = check_under_models(&candidate, &cfg.models, &check_cfg, true);
        if tctx.enabled() {
            let _ = cfg.recorder.set_trace_root(iter_parent);
            tctx.end(
                ispan,
                "cegar_iter",
                iter_parent,
                &[
                    ("iteration", J::U(iteration as u64)),
                    ("ok", J::B(all_ok(&verdicts))),
                    (
                        "fences",
                        J::U(placement.iter().map(Vec::len).sum::<usize>() as u64),
                    ),
                ],
            );
        }
        cfg.recorder.incr(Metric::SynthIterations);
        total_states += states_of(&verdicts);
        if all_ok(&verdicts) {
            if cfg.minimize {
                minimize(
                    &baseline,
                    &mut placement,
                    cfg,
                    &check_cfg,
                    &mut total_states,
                );
            }
            let (instance, _) = build_candidate(&baseline, &placement);
            let synthesis = Synthesis {
                instance,
                baseline,
                iterations: iteration,
                cores,
                total_states,
                placement,
            };
            cfg.recorder
                .add(Metric::FencesInserted, synthesis.fences_inserted() as u64);
            return SynthOutcome::Synthesized(Box::new(synthesis));
        }
        // Refine from the first non-ok verdict.
        let bad = verdicts
            .iter()
            .find(|v| !v.verdict.is_ok())
            .expect("not all ok");
        last_verdict = bad.verdict.label();
        let Some(cex) = bad.verdict.counterexample() else {
            // Inconclusive (state cap / budget): nothing to refine with.
            return SynthOutcome::Exhausted {
                iterations: iteration,
                last_verdict,
            };
        };
        let mut machine = candidate.machine(bad.model);
        if cfg.max_crashes > 0 {
            machine.set_crash_bound(cfg.crash_semantics, cfg.max_crashes);
        }
        let edges = reorder_edges(&machine, &cex.schedule);
        let mut core: Core = BTreeSet::new();
        for edge in &edges {
            let proc = edge.proc.0 as usize;
            let map = &rewrites[proc].new_to_old;
            for &cand in &edge.candidates {
                let Some(Some(pc)) = map.get(cand as usize).copied() else {
                    continue;
                };
                core.insert(Site { proc, pc });
            }
        }
        if core.is_empty() {
            // The violation needs no write-buffer reordering: unfixable
            // by fences.
            return SynthOutcome::Unfixable {
                model: bad.model,
                verdict: last_verdict,
            };
        }
        cfg.recorder.add(Metric::CoreSize, core.len() as u64);
        // Weight new sites and fold the counterexample's conflict counts
        // into the tie-break ranking.
        for &site in &core {
            weights
                .entry(site)
                .or_insert_with(|| site_weight(cfg, &baseline, site));
        }
        let conflicts = por::conflict_counts(&machine, &cex.schedule);
        for site in weights.keys().copied().collect::<Vec<_>>() {
            if let Some(reg) = write_target(&baseline, site.proc, site.pc) {
                if let Some(&c) = conflicts.get(&reg) {
                    let e = tiebreak.entry(site).or_insert(0);
                    *e = (*e).max(c);
                }
            }
        }
        cores.push(core);
        let chosen = hitting_set(&cores, &weights, &tiebreak, cfg.exact_limit);
        placement = vec![Vec::new(); n];
        for site in chosen {
            placement[site.proc].push(site.pc);
        }
    }
    SynthOutcome::Exhausted {
        iterations: cfg.max_iters,
        last_verdict,
    }
}

/// Drop every fence whose removal keeps all models clean. Afterwards the
/// placement is 1-minimal: removing any remaining fence reintroduces a
/// violation.
fn minimize(
    baseline: &OrderingInstance,
    placement: &mut [Vec<usize>],
    cfg: &SynthConfig,
    check_cfg: &CheckConfig,
    total_states: &mut usize,
) {
    // Try expensive sites first so the survivors are the cheap ones.
    let mut sites: Vec<Site> = placement
        .iter()
        .enumerate()
        .flat_map(|(proc, pcs)| pcs.iter().map(move |&pc| Site { proc, pc }))
        .collect();
    sites.sort_unstable_by_key(|&s| (std::cmp::Reverse(site_weight(cfg, baseline, s)), s));
    for site in sites {
        let mut trial: Vec<Vec<usize>> = placement.to_vec();
        trial[site.proc].retain(|&pc| pc != site.pc);
        let (candidate, _) = build_candidate(baseline, &trial);
        let verdicts = check_under_models(&candidate, &cfg.models, check_cfg, true);
        *total_states += states_of(&verdicts);
        if all_ok(&verdicts) {
            placement[site.proc].retain(|&pc| pc != site.pc);
        }
    }
}

fn states_of(verdicts: &[ModelVerdict]) -> usize {
    verdicts.iter().map(|v| v.verdict.stats().states).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlocks::{build_mutex, FenceMask, LockKind};

    fn quick_cfg() -> SynthConfig {
        SynthConfig {
            models: vec![MemoryModel::Pso, MemoryModel::Tso],
            ..SynthConfig::default()
        }
    }

    #[test]
    fn synthesizes_peterson_n2() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        let out = synthesize(&inst, &quick_cfg());
        let s = out.synthesis().expect("peterson should synthesize");
        assert!(
            s.fences_inserted() >= 1,
            "peterson needs a store-load fence"
        );
        // The synthesized instance is clean under every requested model.
        let vs = check_under_models(
            &s.instance,
            &[MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso],
            &quick_cfg().check_config(),
            false,
        );
        assert!(all_ok(&vs));
    }

    #[test]
    fn sc_only_needs_no_fences() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        let cfg = SynthConfig {
            models: vec![MemoryModel::Sc],
            ..SynthConfig::default()
        };
        let out = synthesize(&inst, &cfg);
        let s = out.synthesis().expect("sc always synthesizes");
        assert_eq!(s.fences_inserted(), 0, "SC needs no fences");
        assert_eq!(s.iterations, 1);
    }

    #[test]
    fn placement_is_one_minimal() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        let cfg = quick_cfg();
        let out = synthesize(&inst, &cfg);
        let s = out.synthesis().expect("synthesized");
        for site in s.sites() {
            let mut stripped = s.placement.clone();
            stripped[site.proc].retain(|&pc| pc != site.pc);
            let (candidate, _) = build_candidate(&s.baseline, &stripped);
            let vs = check_under_models(&candidate, &cfg.models, &cfg.check_config(), true);
            assert!(
                !all_ok(&vs),
                "removing fence {site} should reintroduce a violation"
            );
        }
    }
}
