//! Weighted hitting set over counterexample cores.
//!
//! Each refinement iteration of the CEGAR loop contributes one **core**: a
//! set of candidate fence sites such that fencing *any one of them* kills
//! that iteration's counterexample. A placement is feasible iff it hits
//! every accumulated core, so choosing the next placement is a weighted
//! hitting-set problem — NP-hard in general, tiny in practice (lock
//! programs have a handful of stores).
//!
//! The solver runs greedy set-cover (best coverage-per-weight, with a
//! deterministic conflict-count tie-break) and, when the site universe is
//! small enough, an exact branch-and-bound seeded with the greedy bound.
//! Greedy alone would be sound — the re-check validates every placement —
//! but exactness is what makes the Pareto explorer's curves meaningful:
//! the reported placement really is minimum-weight for its cores.

use std::collections::{BTreeMap, BTreeSet};

/// A candidate fence site: "insert a fence immediately after `pc` in
/// process `proc`'s program" (pc in the synthesis baseline's index space).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// Process index.
    pub proc: usize,
    /// Baseline pc of the store the fence follows.
    pub pc: usize,
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}@{}", self.proc, self.pc)
    }
}

/// A counterexample core: fencing any member site breaks the schedule the
/// core was extracted from.
pub type Core = BTreeSet<Site>;

/// Solve the weighted hitting set for `cores`.
///
/// `weight` gives each site's cost (missing sites default to 1; weights
/// are clamped to ≥ 1 so ratios stay finite). `tiebreak` orders
/// equally-scored greedy picks (higher first — the CEGAR loop passes
/// per-register conflict counts). If the site universe has at most
/// `exact_limit` sites, the greedy solution is refined by exact
/// branch-and-bound.
///
/// Returns the chosen sites, sorted. Empty input → empty placement.
#[must_use]
pub fn hitting_set(
    cores: &[Core],
    weight: &BTreeMap<Site, u64>,
    tiebreak: &BTreeMap<Site, u64>,
    exact_limit: usize,
) -> Vec<Site> {
    let cores: Vec<&Core> = cores.iter().filter(|c| !c.is_empty()).collect();
    if cores.is_empty() {
        return Vec::new();
    }
    let universe: BTreeSet<Site> = cores.iter().flat_map(|c| c.iter().copied()).collect();
    let w = |s: Site| weight.get(&s).copied().unwrap_or(1).max(1);
    let greedy = greedy_cover(&cores, &universe, &w, tiebreak);
    if universe.len() <= exact_limit {
        if let Some(exact) = branch_and_bound(&cores, &universe, &w, &greedy) {
            return exact;
        }
    }
    greedy
}

/// Total weight of a placement under `w`.
fn total<F: Fn(Site) -> u64>(sites: &[Site], w: &F) -> u64 {
    sites.iter().map(|&s| w(s)).sum()
}

fn greedy_cover<F: Fn(Site) -> u64>(
    cores: &[&Core],
    universe: &BTreeSet<Site>,
    w: &F,
    tiebreak: &BTreeMap<Site, u64>,
) -> Vec<Site> {
    let mut chosen: Vec<Site> = Vec::new();
    let mut uncovered: Vec<&Core> = cores.to_vec();
    while !uncovered.is_empty() {
        // Pick the site with the best covered-per-weight ratio; ties go to
        // the higher conflict count, then the smaller site (determinism).
        let best = universe
            .iter()
            .filter(|s| !chosen.contains(s))
            .map(|&s| {
                let covered = uncovered.iter().filter(|c| c.contains(&s)).count() as u64;
                (
                    covered * 1_000_000 / w(s),
                    tiebreak.get(&s).copied().unwrap_or(0),
                    std::cmp::Reverse(s),
                    s,
                )
            })
            .max()
            .map(|(_, _, _, s)| s)
            .expect("non-empty universe with uncovered cores");
        debug_assert!(uncovered.iter().any(|c| c.contains(&best)));
        chosen.push(best);
        uncovered.retain(|c| !c.contains(&best));
    }
    chosen.sort_unstable();
    chosen
}

/// Exact minimum-weight hitting set by branching on the sites of the first
/// uncovered core, with the incumbent (greedy) weight as the bound. The
/// node budget caps pathological inputs; `None` means the budget ran out
/// and the caller should keep the greedy answer.
fn branch_and_bound<F: Fn(Site) -> u64>(
    cores: &[&Core],
    universe: &BTreeSet<Site>,
    w: &F,
    incumbent: &[Site],
) -> Option<Vec<Site>> {
    let _ = universe;
    let mut best: Vec<Site> = incumbent.to_vec();
    let mut best_w = total(incumbent, w);
    let mut budget = 200_000usize;
    let mut partial: Vec<Site> = Vec::new();
    fn recurse<F: Fn(Site) -> u64>(
        cores: &[&Core],
        w: &F,
        partial: &mut Vec<Site>,
        partial_w: u64,
        best: &mut Vec<Site>,
        best_w: &mut u64,
        budget: &mut usize,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        let Some(open) = cores
            .iter()
            .find(|c| !c.iter().any(|s| partial.contains(s)))
        else {
            // Everything hit — new incumbent (strictly better by the prune).
            *best = partial.clone();
            best.sort_unstable();
            *best_w = partial_w;
            return true;
        };
        for &s in open.iter() {
            let nw = partial_w + w(s);
            if nw >= *best_w {
                continue;
            }
            partial.push(s);
            let ok = recurse(cores, w, partial, nw, best, best_w, budget);
            partial.pop();
            if !ok {
                return false;
            }
        }
        true
    }
    let complete = recurse(
        cores,
        w,
        &mut partial,
        0,
        &mut best,
        &mut best_w,
        &mut budget,
    );
    complete.then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(proc: usize, pc: usize) -> Site {
        Site { proc, pc }
    }

    fn core(sites: &[Site]) -> Core {
        sites.iter().copied().collect()
    }

    #[test]
    fn empty_cores_need_no_sites() {
        assert!(hitting_set(&[], &BTreeMap::new(), &BTreeMap::new(), 16).is_empty());
    }

    #[test]
    fn single_core_picks_cheapest_site() {
        let cores = [core(&[s(0, 1), s(0, 5)])];
        let weight = BTreeMap::from([(s(0, 1), 10), (s(0, 5), 1)]);
        assert_eq!(
            hitting_set(&cores, &weight, &BTreeMap::new(), 16),
            vec![s(0, 5)]
        );
    }

    #[test]
    fn shared_site_covers_multiple_cores() {
        let cores = [
            core(&[s(0, 1), s(0, 2)]),
            core(&[s(0, 2), s(0, 3)]),
            core(&[s(0, 2), s(1, 7)]),
        ];
        assert_eq!(
            hitting_set(&cores, &BTreeMap::new(), &BTreeMap::new(), 16),
            vec![s(0, 2)]
        );
    }

    #[test]
    fn exact_matches_brute_force_minimum() {
        // Several fixed instances; the solver's weight must equal the
        // brute-force minimum over all subsets.
        let u: Vec<Site> = (0..6).map(|i| s(i % 2, i)).collect();
        let instances: Vec<(Vec<Core>, BTreeMap<Site, u64>)> = vec![
            (
                vec![
                    core(&[u[0], u[1]]),
                    core(&[u[1], u[2]]),
                    core(&[u[2], u[3]]),
                    core(&[u[3], u[4]]),
                    core(&[u[4], u[5]]),
                ],
                BTreeMap::from([(u[1], 3), (u[3], 1), (u[4], 2)]),
            ),
            (
                vec![
                    core(&[u[0], u[2], u[4]]),
                    core(&[u[1], u[3], u[5]]),
                    core(&[u[0], u[5]]),
                    core(&[u[2], u[3]]),
                ],
                BTreeMap::from([(u[0], 5), (u[2], 2), (u[5], 2)]),
            ),
        ];
        for (cores, weight) in &instances {
            let got = hitting_set(cores, weight, &BTreeMap::new(), 16);
            let w = |x: Site| weight.get(&x).copied().unwrap_or(1).max(1);
            let got_w: u64 = got.iter().map(|&x| w(x)).sum();
            // Brute force over all subsets of the universe.
            let univ: Vec<Site> = cores
                .iter()
                .flatten()
                .copied()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            let mut best = u64::MAX;
            for bits in 0u32..(1 << univ.len()) {
                let pick: Vec<Site> = univ
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| bits >> i & 1 == 1)
                    .map(|(_, &x)| x)
                    .collect();
                if cores.iter().all(|c| pick.iter().any(|x| c.contains(x))) {
                    best = best.min(pick.iter().map(|&x| w(x)).sum());
                }
            }
            assert_eq!(got_w, best, "suboptimal placement {got:?}");
        }
    }

    #[test]
    fn every_core_is_hit() {
        let cores = [
            core(&[s(0, 1), s(1, 4)]),
            core(&[s(1, 2)]),
            core(&[s(0, 3), s(1, 4), s(1, 2)]),
        ];
        let got = hitting_set(&cores, &BTreeMap::new(), &BTreeMap::new(), 0);
        for c in &cores {
            assert!(got.iter().any(|g| c.contains(g)), "core {c:?} unhit");
        }
    }

    #[test]
    fn tiebreak_prefers_higher_conflict_count() {
        let cores = [core(&[s(0, 1), s(0, 2)])];
        let tb = BTreeMap::from([(s(0, 1), 5), (s(0, 2), 50)]);
        assert_eq!(hitting_set(&cores, &BTreeMap::new(), &tb, 0), vec![s(0, 2)]);
    }
}
