//! # ftsynth — counterexample-guided fence synthesis
//!
//! The rest of this repository can *verify* a fence placement; this crate
//! *discovers* one. [`synthesize`] runs a CEGAR loop in the style of
//! reorder-bounded fence inference (Joshi & Kroening; Narayan et al. — see
//! `PAPERS.md`):
//!
//! * strip every fence from the input programs
//!   ([`fencevm::strip_fences`]);
//! * model-check the candidate under the configured memory models
//!   (`Engine::Dpor` / `ParallelDpor` via
//!   [`modelcheck::check_under_models`]);
//! * on a violation, replay the counterexample on the unreduced machine
//!   and extract its **reorder edges** ([`wbmem::reorder_edges`]) — the
//!   write-buffer inversions that enabled the bad interleaving — then
//!   translate each edge's candidate fence sites back through the
//!   insertion pc-map into a **counterexample core**;
//! * pick the next placement as a minimum-weight **hitting set** over all
//!   accumulated cores ([`hitting_set`]: greedy plus exact
//!   branch-and-bound for small universes), and repeat until every model
//!   is clean;
//! * finally **minimize**, so removing any single synthesized fence
//!   reintroduces a violation.
//!
//! [`pareto_explore`] sweeps the fence-cost/RMR-cost weighting and
//! measures each synthesized placement's per-passage β (fences) and ρ
//! (RMRs), reproducing the paper's tradeoff curve from synthesis alone —
//! Bakery-style instances should recover the O(1)-fence/O(n)-RMR corner,
//! tournament instances the O(log n)/O(log n) corner (experiment E16).
//!
//! Synthesis soundness rests entirely on the final re-check; every other
//! ingredient (edges, cores, weights, rankings) only steers the search.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cegar;
pub mod hitting;
pub mod pareto;

pub use cegar::{strip_instance, synthesize, SynthConfig, SynthOutcome, Synthesis};
pub use hitting::{hitting_set, Core, Site};
pub use pareto::{pareto_explore, solo_cost, ParetoPoint};
