//! The fence/RMR Pareto explorer.
//!
//! The paper's central object is a *curve*: under write-reordering models
//! any ordering algorithm pays `β·(log(ρ/β)+1) ∈ Ω(n log n)` across fence
//! steps (β) and RMRs (ρ), and the `GT_f` family realizes every point on
//! it — `f = 1` behaves like Bakery (O(1) fences, O(n) RMRs), `f = log n`
//! like the tournament tree (O(log n) of each). [`pareto_explore`] asks
//! whether *synthesis* recovers that tradeoff: it sweeps the hitting-set
//! weighting from fence-averse to RMR-averse, synthesizes a placement at
//! each setting, and measures the resulting per-passage β and ρ on an
//! uncontended solo run. Plotting the sweep against the analytic `GT_f`
//! curve is experiment E16.
//!
//! Weights only steer *which* sites the hitting set prefers among
//! equally-feasible placements; every emitted point re-verified clean
//! under the configured models, so the curve consists exclusively of
//! correct placements.

use simlocks::OrderingInstance;
use wbmem::{MemoryModel, ProcId, SoloOutcome};

use crate::cegar::{synthesize, SynthConfig, SynthOutcome};

/// One point of the synthesized tradeoff curve.
#[derive(Clone, Debug)]
pub struct ParetoPoint {
    /// Instance the placement was synthesized for.
    pub workload: String,
    /// Fence-cost weight used for this sweep step.
    pub fence_weight: u64,
    /// RMR-cost weight used for this sweep step.
    pub rmr_weight: u64,
    /// Static fences the synthesized placement inserts.
    pub fences_inserted: usize,
    /// Measured fence steps β per uncontended passage.
    pub solo_fences: u64,
    /// Measured remote steps ρ per uncontended passage.
    pub solo_rmrs: u64,
    /// CEGAR iterations the synthesis took.
    pub iterations: usize,
    /// States explored across all inner checks.
    pub total_states: usize,
}

/// Sweep `(fence_weight, rmr_weight)` pairs, synthesizing at each and
/// measuring the uncontended passage cost of the result under
/// `measure_model`. Sweep points whose synthesis fails (exhausted or
/// unfixable) are skipped.
#[must_use]
pub fn pareto_explore(
    inst: &OrderingInstance,
    sweep: &[(u64, u64)],
    base: &SynthConfig,
    measure_model: MemoryModel,
    max_solo_steps: usize,
) -> Vec<ParetoPoint> {
    let mut points = Vec::with_capacity(sweep.len());
    for &(fence_weight, rmr_weight) in sweep {
        let cfg = SynthConfig {
            fence_weight,
            rmr_weight,
            ..base.clone()
        };
        let SynthOutcome::Synthesized(s) = synthesize(inst, &cfg) else {
            continue;
        };
        let (solo_fences, solo_rmrs) = solo_cost(&s.instance, measure_model, max_solo_steps);
        points.push(ParetoPoint {
            workload: inst.name.clone(),
            fence_weight,
            rmr_weight,
            fences_inserted: s.fences_inserted(),
            solo_fences,
            solo_rmrs,
            iterations: s.iterations,
            total_states: s.total_states,
        });
    }
    points
}

/// β and ρ of process 0 running one passage alone.
///
/// # Panics
///
/// Panics if the solo run does not terminate within `max_steps` — a
/// synthesized instance re-verified clean always terminates solo.
#[must_use]
pub fn solo_cost(inst: &OrderingInstance, model: MemoryModel, max_steps: usize) -> (u64, u64) {
    let mut m = inst.machine(model);
    let out = m.run_solo(ProcId(0), max_steps);
    assert!(
        matches!(out, SoloOutcome::Terminates { .. }),
        "{}: solo passage did not terminate ({out:?})",
        inst.name
    );
    let c = m.counters().proc(0);
    (c.fences, c.rmrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simlocks::{build_mutex, FenceMask, LockKind};

    #[test]
    fn sweep_emits_verified_points() {
        let inst = build_mutex(LockKind::Peterson, 2, FenceMask::ALL);
        let base = SynthConfig::default();
        let points = pareto_explore(&inst, &[(1, 4), (4, 1)], &base, MemoryModel::Pso, 10_000);
        assert!(!points.is_empty(), "peterson synthesizes at any weighting");
        for p in &points {
            assert!(p.fences_inserted >= 1);
            assert!(p.iterations >= 1);
        }
    }
}
