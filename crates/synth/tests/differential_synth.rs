//! Differential suite for synthesis soundness.
//!
//! Two properties anchor the subsystem:
//!
//! * **Soundness** — every synthesized placement verifies clean on the
//!   full n = 2 lock × model × crash matrix, under every engine
//!   (`Undo`, `Dpor`, `ParallelDpor`). Synthesis runs its inner checks
//!   with one engine; nothing about the placement may depend on which.
//! * **Minimality** — stripping any single synthesized fence reintroduces
//!   a violation under at least one of the synthesis models (the
//!   1-minimality the final minimize pass guarantees by construction).
//!   The proptest sweeps weightings, so minimality holds across the whole
//!   Pareto sweep, not just the default cost model.

use ftsynth::{synthesize, SynthConfig};
use modelcheck::{all_ok, check, check_under_models, CheckConfig, Engine};
use proptest::prelude::*;
use simlocks::{build_mutex, FenceMask, LockKind};
use wbmem::{CrashSemantics, MemoryModel};

const LOCKS: [LockKind; 3] = [LockKind::Bakery, LockKind::Peterson, LockKind::Tournament];

const MODELS: [MemoryModel; 3] = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];

fn engines() -> Vec<Engine> {
    vec![
        Engine::Undo,
        Engine::Dpor {
            reorder_bound: None,
        },
        Engine::ParallelDpor {
            threads: 2,
            reorder_bound: None,
        },
    ]
}

fn synth_cfg() -> SynthConfig {
    SynthConfig {
        models: vec![MemoryModel::Pso, MemoryModel::Tso],
        // The matrix re-verifies with crash injection; put crashes in the
        // synthesis loop too (clean at bound 1 implies clean at bound 0 —
        // crash steps are optional in the schedule space).
        max_crashes: 1,
        crash_semantics: CrashSemantics::DiscardBuffer,
        ..SynthConfig::default()
    }
}

/// Every synthesized n = 2 placement is clean on the full
/// engine × model × crash matrix.
#[test]
fn synthesized_placements_verify_on_matrix() {
    for kind in LOCKS {
        let input = build_mutex(kind, 2, FenceMask::ALL);
        let out = synthesize(&input, &synth_cfg());
        let s = out
            .synthesis()
            .unwrap_or_else(|| panic!("{}: synthesis failed: {out:?}", input.name));
        assert!(
            s.fences_inserted() >= 1,
            "{}: a write-buffer lock needs at least one fence",
            input.name
        );
        for engine in engines() {
            for model in MODELS {
                for crashes in [0, 1] {
                    let mut cfg = CheckConfig::default().with_engine(engine);
                    if crashes > 0 {
                        cfg = cfg.with_crashes(CrashSemantics::DiscardBuffer, crashes);
                    }
                    // Mutual exclusion is what synthesis guarantees; the
                    // termination check rides along like in the rest of
                    // the matrix suites.
                    let v = check(&s.instance.machine(model), &cfg);
                    assert!(
                        v.is_ok(),
                        "{}: synthesized placement failed under {engine:?}/{model}/crashes={crashes}: {}",
                        input.name,
                        v.label()
                    );
                }
            }
        }
    }
}

/// A recoverable lock synthesizes with crash faults in the loop, and the
/// placement holds under both crash semantics.
#[test]
fn recoverable_lock_synthesizes_under_crashes() {
    let input = build_mutex(LockKind::RecoverableTtas, 2, FenceMask::ALL);
    let cfg = SynthConfig {
        models: vec![MemoryModel::Pso, MemoryModel::Tso],
        max_crashes: 1,
        crash_semantics: CrashSemantics::DiscardBuffer,
        ..SynthConfig::default()
    };
    let out = synthesize(&input, &cfg);
    let s = out
        .synthesis()
        .unwrap_or_else(|| panic!("{}: synthesis failed: {out:?}", input.name));
    for engine in engines() {
        for model in MODELS {
            for semantics in [CrashSemantics::DiscardBuffer, CrashSemantics::DrainBuffer] {
                let check_cfg = CheckConfig::default()
                    .with_engine(engine)
                    .with_crashes(semantics, 1);
                let v = check(&s.instance.machine(model), &check_cfg);
                assert!(
                    v.is_ok(),
                    "{}: failed under {engine:?}/{model}/{semantics:?}: {}",
                    input.name,
                    v.label()
                );
            }
        }
    }
}

/// The baseline really is fence-free, and synthesis starts from it: the
/// stripped instance violates under PSO for every matrix lock.
#[test]
fn stripped_baselines_violate_under_pso() {
    for kind in LOCKS {
        let input = build_mutex(kind, 2, FenceMask::ALL);
        let baseline = ftsynth::strip_instance(&input);
        for p in &baseline.programs {
            assert_eq!(
                p.fence_site_count(),
                0,
                "{}: fences survived strip",
                p.name()
            );
        }
        let cfg = CheckConfig::default().with_engine(Engine::Dpor {
            reorder_bound: None,
        });
        let v = check(&baseline.machine(MemoryModel::Pso), &cfg);
        assert!(
            v.is_violation(),
            "{}: fence-free baseline should violate under PSO, got {}",
            input.name,
            v.label()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Minimality witness across the weighting sweep: strip any single
    /// synthesized fence and some synthesis model violates again.
    #[test]
    fn stripping_any_fence_reintroduces_violation(
        lock_idx in 0usize..LOCKS.len(),
        fence_weight in 1u64..6,
        rmr_weight in 0u64..4,
    ) {
        let kind = LOCKS[lock_idx];
        let input = build_mutex(kind, 2, FenceMask::ALL);
        let cfg = SynthConfig {
            fence_weight,
            rmr_weight,
            ..synth_cfg()
        };
        let out = synthesize(&input, &cfg);
        let s = out
            .synthesis()
            .unwrap_or_else(|| panic!("{}: synthesis failed: {out:?}", input.name));
        // Minimality is relative to the synthesis property set — the
        // re-check must match it (a fence can be load-bearing only under
        // crash schedules).
        let check_cfg = CheckConfig::default()
            .with_engine(Engine::Dpor {
                reorder_bound: None,
            })
            .with_crashes(cfg.crash_semantics, cfg.max_crashes);
        for site in s.sites() {
            let mut placement = s.placement.clone();
            placement[site.proc].retain(|&pc| pc != site.pc);
            let mut trial = s.baseline.clone();
            trial.programs = s
                .baseline
                .programs
                .iter()
                .enumerate()
                .map(|(p, prog)| {
                    std::sync::Arc::new(
                        fencevm::insert_fences_after(prog, &placement[p]).program,
                    )
                })
                .collect();
            let vs = check_under_models(&trial, &cfg.models, &check_cfg, true);
            prop_assert!(
                !all_ok(&vs),
                "{}: removing fence {site} left every model clean",
                input.name
            );
        }
    }
}
