//! Per-process write buffers.
//!
//! * Under **PSO/RMO** the buffer is the paper's `WB_p ⊆ R × D`: an
//!   unordered set with at most one entry per register (a new write to `R`
//!   replaces the buffered one), and the system may commit *any* entry.
//! * Under **TSO** the buffer is a FIFO queue; only the oldest entry may
//!   commit, so writes reach memory in program order. A later write to the
//!   same register enqueues behind the earlier one.
//! * Under **SC** writes never enter a buffer (the machine commits them
//!   directly), so the buffer is permanently empty.

use std::collections::{BTreeMap, VecDeque};

use crate::model::MemoryModel;
use crate::reg::RegId;
use crate::value::Value;

/// A process's write buffer, with model-specific structure.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum WriteBuffer {
    /// SC: writes are never buffered.
    Sc,
    /// TSO: FIFO of pending writes, oldest first.
    Tso(VecDeque<(RegId, Value)>),
    /// PSO/RMO: unordered pending writes, one per register. A `BTreeMap`
    /// keeps registers sorted so "smallest buffered register" is O(1).
    Pso(BTreeMap<RegId, Value>),
}

/// How to reverse one buffer mutation (see [`WriteBuffer::push_recorded`]
/// and [`WriteBuffer::take_recorded`]). Applying the undo of a mutation to
/// the buffer that performed it restores the exact prior buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferUndo {
    /// The buffer was not mutated.
    None,
    /// Reverse a TSO push: drop the youngest entry.
    PopBack,
    /// Reverse a PSO push: restore the register's prior entry (`None`
    /// removes it).
    RestorePso(RegId, Option<Value>),
    /// Reverse a TSO take: requeue the entry at the front (oldest).
    PushFront(RegId, Value),
    /// Reverse a PSO take: re-insert the entry.
    Insert(RegId, Value),
}

impl WriteBuffer {
    /// An empty buffer appropriate for `model`.
    #[must_use]
    pub fn new(model: MemoryModel) -> Self {
        match model {
            MemoryModel::Sc => WriteBuffer::Sc,
            MemoryModel::Tso => WriteBuffer::Tso(VecDeque::new()),
            MemoryModel::Pso | MemoryModel::Rmo => WriteBuffer::Pso(BTreeMap::new()),
        }
    }

    /// Whether no writes are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self {
            WriteBuffer::Sc => true,
            WriteBuffer::Tso(q) => q.is_empty(),
            WriteBuffer::Pso(m) => m.is_empty(),
        }
    }

    /// Number of pending writes.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            WriteBuffer::Sc => 0,
            WriteBuffer::Tso(q) => q.len(),
            WriteBuffer::Pso(m) => m.len(),
        }
    }

    /// The value a read of `reg` by the owning process observes from this
    /// buffer, if any (the *youngest* pending write to `reg`).
    #[must_use]
    pub fn read(&self, reg: RegId) -> Option<Value> {
        match self {
            WriteBuffer::Sc => None,
            WriteBuffer::Tso(q) => q.iter().rev().find(|(r, _)| *r == reg).map(|&(_, v)| v),
            WriteBuffer::Pso(m) => m.get(&reg).copied(),
        }
    }

    /// Record a write.
    ///
    /// # Panics
    ///
    /// Panics on an SC buffer: SC writes must be committed directly by the
    /// machine, never buffered.
    pub fn push(&mut self, reg: RegId, val: Value) {
        match self {
            WriteBuffer::Sc => panic!("SC writes are not buffered"),
            WriteBuffer::Tso(q) => q.push_back((reg, val)),
            WriteBuffer::Pso(m) => {
                m.insert(reg, val);
            }
        }
    }

    /// Record a write, returning how to reverse it. Same semantics as
    /// [`push`](Self::push).
    ///
    /// # Panics
    ///
    /// Panics on an SC buffer, like `push`.
    pub fn push_recorded(&mut self, reg: RegId, val: Value) -> BufferUndo {
        match self {
            WriteBuffer::Sc => panic!("SC writes are not buffered"),
            WriteBuffer::Tso(q) => {
                q.push_back((reg, val));
                BufferUndo::PopBack
            }
            WriteBuffer::Pso(m) => BufferUndo::RestorePso(reg, m.insert(reg, val)),
        }
    }

    /// The registers whose pending writes the *system* may commit right now:
    /// every buffered register under PSO, only the oldest under TSO.
    #[must_use]
    pub fn commit_choices(&self) -> Vec<RegId> {
        match self {
            WriteBuffer::Sc => Vec::new(),
            WriteBuffer::Tso(q) => q.front().map(|&(r, _)| r).into_iter().collect(),
            WriteBuffer::Pso(m) => m.keys().copied().collect(),
        }
    }

    /// Visit every register in [`commit_choices`](Self::commit_choices)
    /// order without allocating.
    pub fn for_each_commit_choice(&self, mut f: impl FnMut(RegId)) {
        match self {
            WriteBuffer::Sc => {}
            WriteBuffer::Tso(q) => {
                if let Some(&(r, _)) = q.front() {
                    f(r);
                }
            }
            WriteBuffer::Pso(m) => {
                for &r in m.keys() {
                    f(r);
                }
            }
        }
    }

    /// Whether a commit of `reg` is currently permitted.
    #[must_use]
    pub fn can_commit(&self, reg: RegId) -> bool {
        match self {
            WriteBuffer::Sc => false,
            WriteBuffer::Tso(q) => q.front().is_some_and(|&(r, _)| r == reg),
            WriteBuffer::Pso(m) => m.contains_key(&reg),
        }
    }

    /// Whether any pending write (committable now or not) targets `reg`.
    #[must_use]
    pub fn contains(&self, reg: RegId) -> bool {
        self.read(reg).is_some()
    }

    /// The register a fence-blocked process commits next: the smallest
    /// buffered register under PSO (the paper's rule), the oldest under TSO.
    #[must_use]
    pub fn fence_commit_target(&self) -> Option<RegId> {
        match self {
            WriteBuffer::Sc => None,
            WriteBuffer::Tso(q) => q.front().map(|&(r, _)| r),
            WriteBuffer::Pso(m) => m.keys().next().copied(),
        }
    }

    /// Remove and return the pending write to `reg`, if committable.
    pub fn take(&mut self, reg: RegId) -> Option<Value> {
        match self {
            WriteBuffer::Sc => None,
            WriteBuffer::Tso(q) => {
                if q.front().is_some_and(|&(r, _)| r == reg) {
                    q.pop_front().map(|(_, v)| v)
                } else {
                    None
                }
            }
            WriteBuffer::Pso(m) => m.remove(&reg),
        }
    }

    /// Remove and return the pending write to `reg` (if committable)
    /// together with how to reverse the removal.
    pub fn take_recorded(&mut self, reg: RegId) -> (Option<Value>, BufferUndo) {
        match self.take(reg) {
            None => (None, BufferUndo::None),
            Some(v) => {
                let undo = match self {
                    WriteBuffer::Sc => unreachable!("SC take never succeeds"),
                    WriteBuffer::Tso(_) => BufferUndo::PushFront(reg, v),
                    WriteBuffer::Pso(_) => BufferUndo::Insert(reg, v),
                };
                (Some(v), undo)
            }
        }
    }

    /// Reverse a mutation previously recorded by
    /// [`push_recorded`](Self::push_recorded) or
    /// [`take_recorded`](Self::take_recorded). Undos must be applied to the
    /// buffer that produced them, in reverse order of the mutations.
    pub fn apply_undo(&mut self, undo: BufferUndo) {
        match (undo, self) {
            (BufferUndo::None, _) => {}
            (BufferUndo::PopBack, WriteBuffer::Tso(q)) => {
                q.pop_back();
            }
            (BufferUndo::RestorePso(reg, old), WriteBuffer::Pso(m)) => match old {
                Some(v) => {
                    m.insert(reg, v);
                }
                None => {
                    m.remove(&reg);
                }
            },
            (BufferUndo::PushFront(reg, v), WriteBuffer::Tso(q)) => q.push_front((reg, v)),
            (BufferUndo::Insert(reg, v), WriteBuffer::Pso(m)) => {
                m.insert(reg, v);
            }
            (undo, buf) => panic!("buffer undo {undo:?} does not match buffer {buf:?}"),
        }
    }

    /// The set of distinct registers with pending writes, ascending.
    #[must_use]
    pub fn regs(&self) -> Vec<RegId> {
        match self {
            WriteBuffer::Sc => Vec::new(),
            WriteBuffer::Tso(q) => {
                let mut v: Vec<RegId> = q.iter().map(|&(r, _)| r).collect();
                v.sort_unstable();
                v.dedup();
                v
            }
            WriteBuffer::Pso(m) => m.keys().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RegId {
        RegId(i)
    }
    fn v(x: u64) -> Value {
        Value::Int(x)
    }

    #[test]
    fn sc_buffer_is_always_empty() {
        let b = WriteBuffer::new(MemoryModel::Sc);
        assert!(b.is_empty());
        assert_eq!(b.commit_choices(), vec![]);
        assert_eq!(b.read(r(0)), None);
        assert_eq!(b.fence_commit_target(), None);
    }

    #[test]
    #[should_panic(expected = "not buffered")]
    fn sc_push_panics() {
        WriteBuffer::new(MemoryModel::Sc).push(r(0), v(1));
    }

    #[test]
    fn pso_replaces_write_to_same_register() {
        let mut b = WriteBuffer::new(MemoryModel::Pso);
        b.push(r(5), v(1));
        b.push(r(5), v(2));
        assert_eq!(b.len(), 1);
        assert_eq!(b.read(r(5)), Some(v(2)));
    }

    #[test]
    fn pso_commit_any_order_smallest_fence_target() {
        let mut b = WriteBuffer::new(MemoryModel::Pso);
        b.push(r(9), v(1));
        b.push(r(2), v(2));
        b.push(r(4), v(3));
        assert_eq!(b.commit_choices(), vec![r(2), r(4), r(9)]);
        assert_eq!(b.fence_commit_target(), Some(r(2)));
        assert!(b.can_commit(r(9)));
        assert_eq!(b.take(r(9)), Some(v(1)));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn tso_is_fifo_and_head_only() {
        let mut b = WriteBuffer::new(MemoryModel::Tso);
        b.push(r(9), v(1));
        b.push(r(2), v(2));
        assert_eq!(b.commit_choices(), vec![r(9)]);
        assert!(!b.can_commit(r(2)));
        assert_eq!(b.take(r(2)), None); // not the head
        assert_eq!(b.take(r(9)), Some(v(1)));
        assert_eq!(b.commit_choices(), vec![r(2)]);
    }

    #[test]
    fn tso_read_sees_youngest_write() {
        let mut b = WriteBuffer::new(MemoryModel::Tso);
        b.push(r(1), v(10));
        b.push(r(1), v(20));
        assert_eq!(b.read(r(1)), Some(v(20)));
        assert_eq!(b.len(), 2); // both entries are queued
        assert_eq!(b.regs(), vec![r(1)]);
    }

    #[test]
    fn rmo_behaves_like_pso() {
        let b = WriteBuffer::new(MemoryModel::Rmo);
        assert!(matches!(b, WriteBuffer::Pso(_)));
    }

    #[test]
    fn recorded_ops_round_trip() {
        // PSO: push over an existing entry, then take — undo in reverse
        // order restores the original buffer exactly.
        let mut b = WriteBuffer::new(MemoryModel::Pso);
        b.push(r(1), v(10));
        let orig = b.clone();
        let u1 = b.push_recorded(r(1), v(20));
        let (got, u2) = b.take_recorded(r(1));
        assert_eq!(got, Some(v(20)));
        b.apply_undo(u2);
        b.apply_undo(u1);
        assert_eq!(b, orig);

        // TSO: take pops the head; undo requeues it at the front.
        let mut b = WriteBuffer::new(MemoryModel::Tso);
        b.push(r(9), v(1));
        b.push(r(2), v(2));
        let orig = b.clone();
        let (got, u) = b.take_recorded(r(9));
        assert_eq!(got, Some(v(1)));
        b.apply_undo(u);
        assert_eq!(b, orig);

        // A failed take records nothing.
        let (got, u) = b.take_recorded(r(2));
        assert_eq!(got, None);
        assert_eq!(u, BufferUndo::None);
    }

    #[test]
    fn for_each_commit_choice_matches_vec() {
        let mut b = WriteBuffer::new(MemoryModel::Pso);
        b.push(r(9), v(1));
        b.push(r(2), v(2));
        let mut seen = Vec::new();
        b.for_each_commit_choice(|reg| seen.push(reg));
        assert_eq!(seen, b.commit_choices());
    }

    #[test]
    fn contains_and_regs() {
        let mut b = WriteBuffer::new(MemoryModel::Pso);
        b.push(r(3), v(1));
        assert!(b.contains(r(3)));
        assert!(!b.contains(r(4)));
        assert_eq!(b.regs(), vec![r(3)]);
    }
}
