//! Fence and RMR accounting.
//!
//! `β(E)` (fence steps) and `ρ(E)` (remote steps) are the two quantities the
//! paper's tradeoff relates: `β(E)·(log(ρ(E)/β(E)) + 1) ∈ Ω(n log n)` for
//! ordering algorithms under write reordering.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Step counts for a single process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcCounters {
    /// Fence steps executed (`β` contribution).
    pub fences: u64,
    /// Remote steps: remote reads + remote commits (`ρ` contribution).
    pub rmrs: u64,
    /// Read steps (local + remote).
    pub reads: u64,
    /// Reads that were remote.
    pub remote_reads: u64,
    /// Reads served from the process's own write buffer.
    pub buffer_reads: u64,
    /// Write steps (always local).
    pub writes: u64,
    /// Commit steps attributed to this process.
    pub commits: u64,
    /// Commits that were remote.
    pub remote_commits: u64,
    /// Compare-and-swap steps (comparison primitives, §6 extension).
    pub cas_ops: u64,
    /// CAS steps that were remote.
    pub remote_cas: u64,
    /// Fetch-and-store steps.
    pub swap_ops: u64,
    /// Swap steps that were remote.
    pub remote_swaps: u64,
    /// Crash steps injected into this process (fault injection).
    pub crashes: u64,
}

impl Add for ProcCounters {
    type Output = ProcCounters;
    fn add(self, o: ProcCounters) -> ProcCounters {
        ProcCounters {
            fences: self.fences + o.fences,
            rmrs: self.rmrs + o.rmrs,
            reads: self.reads + o.reads,
            remote_reads: self.remote_reads + o.remote_reads,
            buffer_reads: self.buffer_reads + o.buffer_reads,
            writes: self.writes + o.writes,
            commits: self.commits + o.commits,
            remote_commits: self.remote_commits + o.remote_commits,
            cas_ops: self.cas_ops + o.cas_ops,
            remote_cas: self.remote_cas + o.remote_cas,
            swap_ops: self.swap_ops + o.swap_ops,
            remote_swaps: self.remote_swaps + o.remote_swaps,
            crashes: self.crashes + o.crashes,
        }
    }
}

impl AddAssign for ProcCounters {
    fn add_assign(&mut self, o: ProcCounters) {
        *self = *self + o;
    }
}

impl fmt::Display for ProcCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fences={} rmrs={} (reads={} remote={} buffered={}; writes={}; commits={} remote={}; cas={} remote={}; crashes={})",
            self.fences,
            self.rmrs,
            self.reads,
            self.remote_reads,
            self.buffer_reads,
            self.writes,
            self.commits,
            self.remote_commits,
            self.cas_ops,
            self.remote_cas,
            self.crashes
        )
    }
}

/// Per-process and aggregate step counts for an execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    per_proc: Vec<ProcCounters>,
}

impl Counters {
    /// Counters for `n` processes, all zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Counters {
            per_proc: vec![ProcCounters::default(); n],
        }
    }

    /// Counters for process `p`.
    #[must_use]
    pub fn proc(&self, p: usize) -> &ProcCounters {
        &self.per_proc[p]
    }

    /// Mutable counters for process `p`.
    pub fn proc_mut(&mut self, p: usize) -> &mut ProcCounters {
        &mut self.per_proc[p]
    }

    /// Sum over all processes.
    #[must_use]
    pub fn total(&self) -> ProcCounters {
        self.per_proc
            .iter()
            .copied()
            .fold(ProcCounters::default(), Add::add)
    }

    /// Total fence steps: the paper's `β(E)`.
    #[must_use]
    pub fn beta(&self) -> u64 {
        self.total().fences
    }

    /// Total remote steps: the paper's `ρ(E)`.
    #[must_use]
    pub fn rho(&self) -> u64 {
        self.total().rmrs
    }

    /// Number of processes tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_proc.len()
    }

    /// Whether zero processes are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_proc.is_empty()
    }

    /// Iterate over per-process counters in process-id order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcCounters> {
        self.per_proc.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate() {
        let mut c = Counters::new(2);
        c.proc_mut(0).fences = 3;
        c.proc_mut(0).rmrs = 5;
        c.proc_mut(1).fences = 1;
        c.proc_mut(1).rmrs = 2;
        assert_eq!(c.beta(), 4);
        assert_eq!(c.rho(), 7);
        assert_eq!(c.total().fences, 4);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn add_combines_fieldwise() {
        let a = ProcCounters {
            fences: 1,
            rmrs: 2,
            reads: 3,
            ..Default::default()
        };
        let b = ProcCounters {
            fences: 10,
            rmrs: 20,
            reads: 30,
            ..Default::default()
        };
        let s = a + b;
        assert_eq!(s.fences, 11);
        assert_eq!(s.rmrs, 22);
        assert_eq!(s.reads, 33);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!ProcCounters::default().to_string().is_empty());
    }
}
