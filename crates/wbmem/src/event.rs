//! Execution traces.
//!
//! Every machine step that has an effect produces an [`Event`]. The
//! lower-bound encoder and the experiment harness analyse traces to find
//! which processes accessed whose memory segments, which reads were served
//! from memory, and where commits landed.

use std::fmt;

use crate::reg::{ProcId, RegId};
use crate::value::Value;

/// One effective step of an execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The process taking the step (for commit steps: the process whose
    /// buffered write is committed — the paper treats commits as steps of
    /// that process even though the *system* chooses their position).
    pub proc: ProcId,
    /// What happened.
    pub kind: EventKind,
}

/// The effect of a step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A read step.
    Read {
        /// Register read.
        reg: RegId,
        /// Value observed.
        value: Value,
        /// `true` if served from shared memory, `false` if from the
        /// process's own write buffer.
        from_memory: bool,
        /// Whether the step is remote (an RMR) under the hybrid DSM+CC rule.
        remote: bool,
    },
    /// A write step (the write enters the buffer; always local).
    Write {
        /// Register written.
        reg: RegId,
        /// Value written (after any tagging).
        value: Value,
    },
    /// A fence step (only possible with an empty buffer; always local).
    Fence,
    /// A compare-and-swap step (only possible with an empty buffer).
    Cas {
        /// Register operated on.
        reg: RegId,
        /// The value observed (pre-operation).
        observed: Value,
        /// The value stored, if the comparison succeeded.
        stored: Option<Value>,
        /// Whether the step is remote under the hybrid rule (successful CAS
        /// follows the commit rule; failed CAS follows the read rule).
        remote: bool,
    },
    /// A commit of a buffered write to shared memory.
    Commit {
        /// Register committed.
        reg: RegId,
        /// Value stored.
        value: Value,
        /// Whether the commit is remote under the hybrid rule.
        remote: bool,
    },
    /// A fetch-and-store step (only possible with an empty buffer; always
    /// writes, so always charged by the commit rule).
    Swap {
        /// Register operated on.
        reg: RegId,
        /// The value observed (pre-operation).
        observed: Value,
        /// The value stored.
        stored: Value,
        /// Whether the step is remote under the hybrid rule.
        remote: bool,
    },
    /// A return step: the process enters a final state.
    Return {
        /// The return value.
        value: u64,
    },
    /// A crash step (fault injection): the process's volatile state is lost
    /// and control restarts at its recovery section.
    Crash {
        /// Buffered writes discarded by the crash (`0` when the crash
        /// semantics drain the buffer, or it was already empty).
        lost: usize,
    },
}

impl EventKind {
    /// Whether this event is an RMR.
    #[must_use]
    pub fn is_remote(&self) -> bool {
        match self {
            EventKind::Read { remote, .. }
            | EventKind::Commit { remote, .. }
            | EventKind::Cas { remote, .. }
            | EventKind::Swap { remote, .. } => *remote,
            _ => false,
        }
    }

    /// Whether this event *accesses process `q`'s local memory* in the
    /// paper's sense: a read of a register in `R_q` served from shared
    /// memory, or a commit to a register in `R_q`. The caller supplies the
    /// ownership test.
    #[must_use]
    pub fn accesses_segment_of(&self, owns: impl Fn(RegId) -> bool) -> bool {
        match self {
            EventKind::Read {
                reg, from_memory, ..
            } => *from_memory && owns(*reg),
            EventKind::Commit { reg, .. }
            | EventKind::Cas { reg, .. }
            | EventKind::Swap { reg, .. } => owns(*reg),
            _ => false,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::Read {
                reg,
                value,
                from_memory,
                remote,
            } => write!(
                f,
                "{} read {} = {} [{}{}]",
                self.proc,
                reg,
                value,
                if *from_memory { "mem" } else { "buf" },
                if *remote { ",RMR" } else { "" }
            ),
            EventKind::Write { reg, value } => {
                write!(f, "{} write {} := {}", self.proc, reg, value)
            }
            EventKind::Fence => write!(f, "{} fence", self.proc),
            EventKind::Cas {
                reg,
                observed,
                stored,
                remote,
            } => write!(
                f,
                "{} cas {} saw {} -> {}{}",
                self.proc,
                reg,
                observed,
                stored.map_or_else(|| "failed".to_string(), |v| v.to_string()),
                if *remote { " [RMR]" } else { "" }
            ),
            EventKind::Commit { reg, value, remote } => write!(
                f,
                "{} commit {} := {}{}",
                self.proc,
                reg,
                value,
                if *remote { " [RMR]" } else { "" }
            ),
            EventKind::Swap {
                reg,
                observed,
                stored,
                remote,
            } => write!(
                f,
                "{} swap {} saw {} := {}{}",
                self.proc,
                reg,
                observed,
                stored,
                if *remote { " [RMR]" } else { "" }
            ),
            EventKind::Return { value } => write!(f, "{} return {}", self.proc, value),
            EventKind::Crash { lost } => {
                write!(f, "{} crash ({} buffered writes lost)", self.proc, lost)
            }
        }
    }
}

/// A recorded execution: the sequence of events, in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// The recorded events, in execution order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Drop every event past the first `len` (used by the machine's
    /// undo-log to rewind the trace; a no-op if the trace is shorter).
    pub fn truncate(&mut self, len: usize) {
        self.events.truncate(len);
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the whole trace, one event per line (for debugging and
    /// counterexample output).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            let _ = writeln!(out, "{i:5}  {e}");
        }
        out
    }

    /// The trace as plain text lines, one event per line, without line
    /// numbers — the serialization counterexample artifacts are written
    /// with (each line round-trips through the event `Display` form).
    #[must_use]
    pub fn to_lines(&self) -> Vec<String> {
        self.events.iter().map(|e| e.to_string()).collect()
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_classification() {
        let read = EventKind::Read {
            reg: RegId(0),
            value: Value::Int(1),
            from_memory: true,
            remote: true,
        };
        assert!(read.is_remote());
        assert!(!EventKind::Fence.is_remote());
        assert!(!EventKind::Write {
            reg: RegId(0),
            value: Value::Int(1)
        }
        .is_remote());
    }

    #[test]
    fn segment_access_rule() {
        let owns_r0 = |r: RegId| r == RegId(0);
        let mem_read = EventKind::Read {
            reg: RegId(0),
            value: Value::Bot,
            from_memory: true,
            remote: true,
        };
        let buf_read = EventKind::Read {
            reg: RegId(0),
            value: Value::Bot,
            from_memory: false,
            remote: false,
        };
        let commit = EventKind::Commit {
            reg: RegId(0),
            value: Value::Int(1),
            remote: true,
        };
        let write = EventKind::Write {
            reg: RegId(0),
            value: Value::Int(1),
        };
        assert!(mem_read.accesses_segment_of(owns_r0));
        assert!(
            !buf_read.accesses_segment_of(owns_r0),
            "buffer reads don't touch memory"
        );
        assert!(commit.accesses_segment_of(owns_r0));
        assert!(
            !write.accesses_segment_of(owns_r0),
            "writes only touch the buffer"
        );
    }

    #[test]
    fn trace_records_in_order() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(Event {
            proc: ProcId(0),
            kind: EventKind::Fence,
        });
        t.push(Event {
            proc: ProcId(1),
            kind: EventKind::Return { value: 3 },
        });
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("p1 return 3"));
    }
}
