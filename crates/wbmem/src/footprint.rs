//! Dependence footprints for schedule choices.
//!
//! Partial-order reduction needs to know when two schedule elements
//! *commute*: executing them in either order from the same configuration
//! must be possible and must produce the same configuration. The machine
//! summarizes each choice's observable effect as a [`Footprint`] — which
//! process moved and which shared-memory cell (if any) the step read or
//! wrote — and [`Footprint::independent`] decides commutativity from two
//! footprints alone.
//!
//! The classification leans on two structural facts of the write-buffer
//! machine:
//!
//! * A process's *choice set* (which commits are committable, whether its
//!   operation is fence-blocked, whether it may crash) is a function of its
//!   own local state only, so steps by other processes never enable or
//!   disable a choice — only the *values* flowing through shared memory can
//!   differ, and those are exactly what the footprint's register tracks.
//! * Buffered writes and buffer-served reads touch nothing but the acting
//!   process's own buffer; they are invisible to every other process until
//!   the commit, which gets its own footprint.
//!
//! See `DESIGN.md` §5c for the per-model soundness argument.

use crate::model::MemoryModel;
use crate::reg::{ProcId, RegId};

/// What one schedule choice would touch, as seen by every other process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Footprint {
    /// The process the choice schedules.
    pub proc: ProcId,
    /// The choice's effect class.
    pub kind: FootprintKind,
}

/// The effect class of a schedule choice (see [`Footprint`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FootprintKind {
    /// The step touches only the acting process's private state: a write
    /// entering the buffer, a read served from the buffer, a fence
    /// completing over an empty buffer, or a disabled choice (no-op).
    Local,
    /// The step reads shared memory cell `R` without writing it: a read
    /// served from memory, or a failed CAS.
    Read(RegId),
    /// The step writes shared memory cell `R` as part of a program
    /// operation: an SC-mode write, a successful CAS, or a swap. (CAS and
    /// swap also observe the cell, but the write dependence subsumes the
    /// read dependence.)
    Write(RegId),
    /// The *system* commits the process's buffered write to cell `R` —
    /// either a named commit element or a fence/CAS/swap-forced drain
    /// commit. Unlike [`Write`](FootprintKind::Write), a commit does not
    /// advance the program.
    Commit(RegId),
    /// The process returns: private, but visible to terminal-state checks.
    Return,
    /// The process crashes. `drains` is true when the configured crash
    /// semantics flushes a non-empty buffer to memory (an unbounded set of
    /// commits), false when the buffer is discarded or already empty.
    Crash {
        /// Whether the crash commits buffered writes on its way down.
        drains: bool,
    },
}

impl Footprint {
    /// Whether the choices summarized by `self` and `other` commute: from
    /// any configuration where both are schedulable, executing them in
    /// either order yields the same configuration (and neither disables the
    /// other).
    ///
    /// The relation is symmetric by construction, and conservative: `false`
    /// never breaks soundness, it only costs reduction.
    ///
    /// Per model: the only model-dependent clause is same-process
    /// commit/commit independence, which requires an *unordered* buffer
    /// ([`MemoryModel::reorders_writes`] — PSO/RMO). Under TSO at most one
    /// commit is committable at a time and under SC there are no commits,
    /// so the clause never fires there. Cross-process clauses are
    /// model-independent because the footprints already encode the model's
    /// behaviour (a buffered write is `Local`, an SC write is `Write`).
    #[must_use]
    pub fn independent(self, other: Footprint, model: MemoryModel) -> bool {
        use FootprintKind::{Commit, Crash, Local, Read, Return, Write};
        if self.proc == other.proc {
            // Two steps of one process are ordered by that process — except
            // two commits of distinct cells from an unordered buffer, which
            // the system may flush in either order with identical results.
            return match (self.kind, other.kind) {
                (Commit(a), Commit(b)) => a != b && model.reorders_writes(),
                _ => false,
            };
        }
        match (self.kind, other.kind) {
            // Private steps commute with everything another process does.
            (Local | Return, _) | (_, Local | Return) => true,
            // A discarding crash is private too; a draining crash commits an
            // unbounded register set we do not enumerate, so it conflicts
            // with every cross-process memory access.
            (Crash { drains: false }, _) | (_, Crash { drains: false }) => true,
            (Crash { drains: true }, Crash { drains: true }) => true,
            (Crash { drains: true }, _) | (_, Crash { drains: true }) => false,
            // Reads commute with reads, even of the same cell.
            (Read(_), Read(_)) => true,
            // A read and a write, or two writes, commute iff they touch
            // different cells.
            (Read(a) | Write(a) | Commit(a), Read(b) | Write(b) | Commit(b)) => a != b,
        }
    }

    /// Whether the step writes shared memory (commit, SC write, successful
    /// CAS, swap — not a draining crash, whose set is unenumerated).
    #[must_use]
    pub fn writes(self) -> Option<RegId> {
        match self.kind {
            FootprintKind::Write(r) | FootprintKind::Commit(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the step reads shared memory without writing it.
    #[must_use]
    pub fn reads(self) -> Option<RegId> {
        match self.kind {
            FootprintKind::Read(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(p: u32, kind: FootprintKind) -> Footprint {
        Footprint {
            proc: ProcId(p),
            kind,
        }
    }

    #[test]
    fn independence_is_symmetric_everywhere() {
        use FootprintKind::{Commit, Crash, Local, Read, Return, Write};
        let kinds = [
            Local,
            Read(RegId(0)),
            Read(RegId(1)),
            Write(RegId(0)),
            Write(RegId(1)),
            Commit(RegId(0)),
            Commit(RegId(1)),
            Return,
            Crash { drains: false },
            Crash { drains: true },
        ];
        for model in MemoryModel::ALL {
            for p in [0u32, 1] {
                for q in [0u32, 1] {
                    for a in kinds {
                        for b in kinds {
                            let x = fp(p, a);
                            let y = fp(q, b);
                            assert_eq!(
                                x.independent(y, model),
                                y.independent(x, model),
                                "{model}: {x:?} vs {y:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn conflicting_accesses_are_dependent() {
        use FootprintKind::{Commit, Read, Write};
        let r = RegId(3);
        for model in MemoryModel::ALL {
            // Irreflexive on conflicts: a memory-touching footprint never
            // commutes with itself (same process), nor with a same-cell
            // write by anyone.
            for k in [Read(r), Write(r), Commit(r)] {
                assert!(!fp(0, k).independent(fp(0, k), model), "{model}: self");
            }
            for w in [Write(r), Commit(r)] {
                for k in [Read(r), Write(r), Commit(r)] {
                    assert!(
                        !fp(0, w).independent(fp(1, k), model),
                        "{model}: same-cell {w:?} vs {k:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn distinct_cells_and_private_steps_commute() {
        use FootprintKind::{Commit, Local, Read, Write};
        for model in MemoryModel::ALL {
            assert!(fp(0, Write(RegId(0))).independent(fp(1, Write(RegId(1))), model));
            assert!(fp(0, Commit(RegId(0))).independent(fp(1, Read(RegId(1))), model));
            assert!(fp(0, Read(RegId(5))).independent(fp(1, Read(RegId(5))), model));
            assert!(fp(0, Local).independent(fp(1, Commit(RegId(0))), model));
        }
    }

    #[test]
    fn same_process_commits_commute_only_under_reordering_models() {
        use FootprintKind::Commit;
        let (a, b) = (fp(0, Commit(RegId(0))), fp(0, Commit(RegId(1))));
        assert!(!a.independent(b, MemoryModel::Sc));
        assert!(!a.independent(b, MemoryModel::Tso));
        assert!(a.independent(b, MemoryModel::Pso));
        assert!(a.independent(b, MemoryModel::Rmo));
        assert!(!a.independent(a, MemoryModel::Pso), "same cell never");
    }

    #[test]
    fn crash_clauses() {
        use FootprintKind::{Crash, Local, Read, Write};
        for model in MemoryModel::ALL {
            let discard = Crash { drains: false };
            let drain = Crash { drains: true };
            assert!(
                !fp(0, discard).independent(fp(0, Local), model),
                "same proc"
            );
            assert!(fp(0, discard).independent(fp(1, Write(RegId(0))), model));
            assert!(!fp(0, drain).independent(fp(1, Read(RegId(0))), model));
            assert!(fp(0, drain).independent(fp(1, drain), model));
        }
    }
}
