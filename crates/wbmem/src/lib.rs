//! # wbmem — the write-buffer shared-memory machine of Attiya–Hendler–Woelfel
//!
//! This crate implements, as an executable discrete-event machine, the shared
//! memory model of Section 2 of *“Trading Fences with RMRs and Separating
//! Memory Models”* (PODC 2015):
//!
//! * `n` asynchronous processes communicate through shared **registers**
//!   drawn from a totally ordered set, with values from a domain containing a
//!   distinguished initial value ⊥ ([`Value::Bot`]).
//! * Each process has a **write buffer**. A `write(R, x)` enters the buffer
//!   (replacing any buffered write to `R` under PSO); the **system** later
//!   *commits* buffered writes to shared memory at points of its choosing.
//!   A `fence()` blocks the process until its buffer is empty.
//! * A **schedule** is a sequence of pairs `(p, R?)`; together with the
//!   processes' programs it uniquely determines an execution
//!   ([`Machine::step`] follows the paper's three-case rule).
//! * Remote memory references (RMRs) are accounted in the paper's **hybrid
//!   DSM + CC model**: registers are partitioned into per-process memory
//!   segments *and* every process carries a value cache; a step is *remote*
//!   only if it is an RMR in both senses (see [`Machine`] docs and the
//!   [`rmr`] module).
//!
//! Four memory models are supported ([`MemoryModel`]): `Sc` (no buffering),
//! `Tso` (FIFO buffer — writes commit in program order), `Pso` (unordered
//! buffer — the paper's machine), and `Rmo` (treated as `Pso`: the paper's
//! lower bound never exploits read reordering, and its algorithms order reads
//! explicitly with fences).
//!
//! Programs are supplied through the [`Process`] trait: a deterministic,
//! cloneable state machine that exposes the operation it is *poised* to
//! execute and advances when the machine performs it. The `fencevm` crate
//! provides an instruction-set implementation.
//!
//! ## Example
//!
//! ```
//! use wbmem::{Machine, MachineConfig, MemoryModel, MemoryLayout, Poised, Process,
//!             ProcId, RegId, SchedElem, Value};
//!
//! /// A two-phase process: write 7 to register 0, fence, then return 7.
//! #[derive(Clone, Debug, PartialEq, Eq, Hash)]
//! struct WriterThenReturn { phase: u8 }
//!
//! impl Process for WriterThenReturn {
//!     fn poised(&self) -> Poised {
//!         match self.phase {
//!             0 => Poised::Write(RegId(0), Value::Int(7)),
//!             1 => Poised::Fence,
//!             _ => Poised::Return(7),
//!         }
//!     }
//!     fn advance(&mut self, _read: Option<Value>) {
//!         self.phase += 1;
//!     }
//! }
//!
//! let config = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned());
//! let mut m = Machine::new(config, vec![WriterThenReturn { phase: 0 }]);
//! let p = ProcId(0);
//! m.step(SchedElem::op(p));      // write enters the buffer
//! assert!(!m.buffer_is_empty(p));
//! m.step(SchedElem::op(p));      // fence with non-empty buffer => commit
//! m.step(SchedElem::op(p));      // fence completes
//! m.step(SchedElem::op(p));      // return
//! assert_eq!(m.return_value(p), Some(7));
//! assert_eq!(m.memory(RegId(0)).payload(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod counters;
pub mod event;
pub mod footprint;
pub mod machine;
pub mod model;
pub mod process;
pub mod reg;
pub mod reorder;
pub mod rmr;
pub mod sched;
pub mod stats;
pub mod value;

pub use buffer::{BufferUndo, WriteBuffer};
pub use counters::{Counters, ProcCounters};
pub use event::{Event, EventKind, Trace};
pub use footprint::{Footprint, FootprintKind};
pub use machine::{
    CrashSemantics, Machine, MachineConfig, MachineError, SoloOutcome, StateKey, StepOutcome,
    UndoToken,
};
pub use model::MemoryModel;
pub use process::{AccessSet, FutureAccess, Poised, PoisedKind, Process};
pub use reg::{MemoryLayout, ProcId, RegId, RegSet};
pub use reorder::{reorder_edges, ReorderEdge, ReorderKind};
pub use sched::{SchedElem, Schedule};
pub use value::Value;
