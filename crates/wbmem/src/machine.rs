//! The shared-memory machine: configurations, the step rule, and accounting.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::buffer::{BufferUndo, WriteBuffer};
use crate::counters::{Counters, ProcCounters};
use crate::event::{Event, EventKind, Trace};
use crate::footprint::{Footprint, FootprintKind};
use crate::model::MemoryModel;
use crate::process::{Poised, Process};
use crate::reg::{MemoryLayout, ProcId, RegId};
use crate::rmr::LocalityTracker;
use crate::sched::SchedElem;
use crate::value::Value;

/// What a crash step does to the crashed process's write buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CrashSemantics {
    /// The buffer is volatile and lost with the process: pending writes
    /// never reach shared memory (the store-buffer model of recoverable
    /// mutual exclusion — a crash can swallow a write the program already
    /// performed).
    #[default]
    DiscardBuffer,
    /// The buffer is flushed on the way down: every pending write commits,
    /// in fence-drain order, before the process state is reset (hardware
    /// whose cache subsystem drains the store buffer when a core fails).
    DrainBuffer,
}

impl std::fmt::Display for CrashSemantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashSemantics::DiscardBuffer => write!(f, "discard"),
            CrashSemantics::DrainBuffer => write!(f, "drain"),
        }
    }
}

/// A typed machine-level failure, returned by the `try_` stepping APIs
/// instead of panicking on malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// A schedule element named a process id outside `0..n`.
    NoSuchProc {
        /// The out-of-range process id.
        proc: ProcId,
        /// The machine's process count.
        n: usize,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::NoSuchProc { proc, n } => {
                write!(
                    f,
                    "schedule element names {proc}, but the machine has {n} processes"
                )
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Static machine parameters.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Memory model governing buffering and commit order.
    pub model: MemoryModel,
    /// DSM segment assignment for RMR accounting.
    pub layout: MemoryLayout,
    /// Make every written value globally unique by tagging it with a nonce
    /// (the lower-bound proof's w.l.o.g. assumption that all written values
    /// are distinct). Algorithms observe only payloads, so behaviour is
    /// unchanged; only cache-locality accounting becomes strict.
    pub tag_writes: bool,
    /// Record an execution [`Trace`]. Off by default; turn on for analysis.
    pub record_trace: bool,
    /// What a crash step does to the crashed process's write buffer.
    pub crash_semantics: CrashSemantics,
    /// Crash-fault budget per process. `0` (the default) disables crash
    /// injection entirely: crash elements are no-ops and
    /// [`choices`](Machine::choices) never offers them.
    pub max_crashes: u32,
}

impl MachineConfig {
    /// A configuration with tagging, tracing, and crash injection disabled.
    #[must_use]
    pub fn new(model: MemoryModel, layout: MemoryLayout) -> Self {
        MachineConfig {
            model,
            layout,
            tag_writes: false,
            record_trace: false,
            crash_semantics: CrashSemantics::DiscardBuffer,
            max_crashes: 0,
        }
    }

    /// Enable write tagging.
    #[must_use]
    pub fn with_tagged_writes(mut self) -> Self {
        self.tag_writes = true;
        self
    }

    /// Enable trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enable crash injection: up to `max_crashes` crash steps per process,
    /// with the given buffer semantics.
    #[must_use]
    pub fn with_crashes(mut self, semantics: CrashSemantics, max_crashes: u32) -> Self {
        self.crash_semantics = semantics;
        self.max_crashes = max_crashes;
        self
    }
}

/// One process's slot in a configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct ProcSlot<P> {
    prog: P,
    buffer: WriteBuffer,
    returned: Option<u64>,
    /// Crash steps already spent on this process (bounded by
    /// `MachineConfig::max_crashes`). Part of the behavioural state: a
    /// process with crash budget left can still be crashed, one without
    /// cannot, so two configurations differing only here have different
    /// futures.
    crashes: u32,
}

/// The result of applying one schedule element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The element had no effect (the process was in a final state, or a
    /// named commit was not committable and no operation applied).
    NoOp,
    /// A step was taken; the primary event describes it. (An SC-mode write
    /// records both a `Write` and a `Commit` in the trace; the `Commit` is
    /// the primary event.)
    Stepped(Event),
}

impl StepOutcome {
    /// The event of the step, if one was taken.
    #[must_use]
    pub fn event(&self) -> Option<&Event> {
        match self {
            StepOutcome::NoOp => None,
            StepOutcome::Stepped(e) => Some(e),
        }
    }
}

/// Outcome of running a process alone from the current configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SoloOutcome {
    /// The process reaches a final state after `steps` further steps.
    Terminates {
        /// Steps taken to reach the final state.
        steps: usize,
        /// The value returned.
        ret: u64,
    },
    /// The process provably never finishes alone: its solo execution
    /// revisited a configuration (it is spinning on unchanged memory).
    Diverges {
        /// Steps taken before the revisit was detected.
        steps: usize,
    },
    /// The step bound was exhausted without termination or a revisit.
    Unknown,
}

impl SoloOutcome {
    /// Whether the process enters a final state in every (fair) solo run.
    #[must_use]
    pub fn terminates(self) -> bool {
        matches!(self, SoloOutcome::Terminates { .. })
    }
}

/// A snapshot of the behaviourally relevant machine state (shared memory,
/// buffers, process states, return flags) — everything that determines
/// future behaviour, and nothing that doesn't (no counters, no caches, no
/// trace). Used as the visited-set key by the model checker.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StateKey<P: Process> {
    mem: Vec<(RegId, Value)>,
    procs: Vec<(P, WriteBuffer, Option<u64>, u32)>,
}

/// Everything needed to reverse one [`Machine::step_recorded`] call.
///
/// A step's mutation footprint is small — one process's program and buffer,
/// at most one shared-memory cell, at most one commit-ownership entry, at
/// most two cache entries, one process's counters — so recording it and
/// reversing it is O(footprint), not O(machine). This is what makes
/// depth-first search backtrack by undoing instead of cloning whole
/// configurations.
///
/// Tokens must be applied to the machine that produced them, in reverse
/// order of the steps they record (LIFO).
#[derive(Clone, Debug)]
pub struct UndoToken<P> {
    proc: ProcId,
    /// The dependence footprint of the recorded step (predicted from the
    /// pre-step configuration; see [`Machine::choice_footprint`]).
    footprint: Footprint,
    /// The program state before the step, if the step advanced it.
    prog: Option<P>,
    returned: Option<u64>,
    buffer: BufferUndo,
    /// `(reg, prior value)` for the shared-memory cell the step wrote.
    mem: Option<(RegId, Option<Value>)>,
    /// `(reg, prior owner)` for the commit-ownership entry the step moved.
    committer: Option<(RegId, Option<ProcId>)>,
    /// Cache entries the step newly inserted (a step observes ≤ 2 values).
    cache: [Option<(RegId, Value)>; 2],
    counters: ProcCounters,
    /// Crash budget spent by the process before the step.
    crashes: u32,
    /// The crash footprint, if the step was a crash. A crash exceeds every
    /// per-step bound of the fields above (a drain commits the whole buffer
    /// — many memory cells, many ownership moves), so its pre-image rides in
    /// a dedicated boxed record; crash-free steps pay one unused `None`.
    crash: Option<Box<CrashUndo>>,
    next_nonce: u64,
    trace_len: usize,
}

impl<P> UndoToken<P> {
    /// The dependence footprint of the step this token records: which
    /// process moved and which shared cell the step read, wrote, or
    /// committed. Computed from the pre-step configuration, so it describes
    /// the step actually taken (e.g. a read reports `Local` when it was
    /// served from the process's own buffer).
    #[must_use]
    pub fn footprint(&self) -> Footprint {
        self.footprint
    }
}

/// The full pre-image of a crash step: the buffer as it was before the
/// crash, plus (for draining semantics) every memory cell the drain
/// overwrote and every commit-ownership entry it moved, in commit order.
#[derive(Clone, Debug)]
struct CrashUndo {
    buffer: WriteBuffer,
    mem: Vec<(RegId, Option<Value>)>,
    committers: Vec<(RegId, Option<ProcId>)>,
}

/// Collects the pre-images of the commits a draining crash performs. The
/// ordinary [`UndoToken`] sink asserts one-mutation-per-step bounds that a
/// drain legitimately exceeds, so crash commits are funneled through this
/// sink instead and the result is attached to the token as a [`CrashUndo`].
#[derive(Default)]
struct CrashRecorder {
    mem: Vec<(RegId, Option<Value>)>,
    committers: Vec<(RegId, Option<ProcId>)>,
}

impl<P> UndoSink<P> for CrashRecorder {
    fn mem_overwritten(&mut self, reg: RegId, old: Option<Value>) {
        self.mem.push((reg, old));
    }
    fn committer_moved(&mut self, reg: RegId, old: Option<ProcId>) {
        self.committers.push((reg, old));
    }
}

/// Receives the pre-images of a step's mutations as they happen. The unit
/// sink `()` compiles to nothing (plain [`Machine::step`]); an
/// [`UndoToken`] records them ([`Machine::step_recorded`]).
trait UndoSink<P> {
    fn save_prog(&mut self, _prog: &P) {}
    fn mem_overwritten(&mut self, _reg: RegId, _old: Option<Value>) {}
    fn committer_moved(&mut self, _reg: RegId, _old: Option<ProcId>) {}
    fn cache_inserted(&mut self, _reg: RegId, _value: Value) {}
    fn buffer_mutated(&mut self, _undo: BufferUndo) {}
    // Boxed because the recording sink stores it whole in the `UndoToken`;
    // the no-op default just drops it.
    #[allow(clippy::boxed_local)]
    fn crashed(&mut self, _undo: Box<CrashUndo>) {}
}

impl<P> UndoSink<P> for () {}

impl<P: Process> UndoSink<P> for UndoToken<P> {
    fn save_prog(&mut self, prog: &P) {
        if self.prog.is_none() {
            self.prog = Some(prog.clone());
        }
    }
    fn mem_overwritten(&mut self, reg: RegId, old: Option<Value>) {
        debug_assert!(self.mem.is_none(), "a step writes at most one cell");
        self.mem = Some((reg, old));
    }
    fn committer_moved(&mut self, reg: RegId, old: Option<ProcId>) {
        debug_assert!(self.committer.is_none(), "a step commits at most once");
        self.committer = Some((reg, old));
    }
    fn cache_inserted(&mut self, reg: RegId, value: Value) {
        let slot = self
            .cache
            .iter_mut()
            .find(|s| s.is_none())
            .expect("a step observes at most two values");
        *slot = Some((reg, value));
    }
    fn buffer_mutated(&mut self, undo: BufferUndo) {
        debug_assert_eq!(
            self.buffer,
            BufferUndo::None,
            "a step mutates the buffer at most once"
        );
        self.buffer = undo;
    }
    fn crashed(&mut self, undo: Box<CrashUndo>) {
        debug_assert!(self.crash.is_none(), "a step crashes at most once");
        self.crash = Some(undo);
    }
}

/// A system configuration plus the machinery to evolve it: the paper's
/// `Exec_A(C; σ)` made executable.
///
/// See the [crate docs](crate) for the model; see [`Machine::step`] for the
/// step rule.
#[derive(Clone, Debug)]
pub struct Machine<P: Process> {
    config: MachineConfig,
    mem: BTreeMap<RegId, Value>,
    procs: Vec<ProcSlot<P>>,
    locality: LocalityTracker,
    counters: Counters,
    trace: Trace,
    next_nonce: u64,
    // Observability hook: shared (Arc-backed) recorder, disabled by
    // default. Excluded from `hash_state`/`state_key` (those enumerate
    // fields explicitly) and from replay semantics; clones share it, so
    // every clone of an instrumented machine reports to the same sink.
    obs: ftobs::Recorder,
}

impl<P: Process> Machine<P> {
    /// A machine at the initial configuration: every register ⊥, every
    /// buffer empty, every process at its initial state.
    #[must_use]
    pub fn new(config: MachineConfig, procs: Vec<P>) -> Self {
        let n = procs.len();
        let model = config.model;
        Machine {
            config,
            mem: BTreeMap::new(),
            procs: procs
                .into_iter()
                .map(|prog| ProcSlot {
                    prog,
                    buffer: WriteBuffer::new(model),
                    returned: None,
                    crashes: 0,
                })
                .collect(),
            locality: LocalityTracker::new(n),
            counters: Counters::new(n),
            trace: Trace::new(),
            next_nonce: 0,
            obs: ftobs::Recorder::disabled(),
        }
    }

    /// Attach a metrics recorder: every subsequent executed step (and
    /// undo) is classified and counted through it. Clones of the machine
    /// share the recorder. Pass [`ftobs::Recorder::disabled`] to detach.
    pub fn set_recorder(&mut self, obs: ftobs::Recorder) {
        self.obs = obs;
    }

    /// The attached metrics recorder (disabled unless
    /// [`set_recorder`](Self::set_recorder) was called).
    #[must_use]
    pub fn recorder(&self) -> &ftobs::Recorder {
        &self.obs
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// The machine's configuration parameters.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Pre-execution register initialization: sets shared memory directly,
    /// without a step, without accounting, and without granting anyone
    /// commit ownership.
    pub fn init_reg(&mut self, reg: RegId, value: Value) {
        self.mem.insert(reg, value);
    }

    /// Set the crash-fault budget and semantics after construction (the
    /// model checker applies `CheckConfig` crash settings this way, without
    /// rebuilding the machine).
    pub fn set_crash_bound(&mut self, semantics: CrashSemantics, max_crashes: u32) {
        self.config.crash_semantics = semantics;
        self.config.max_crashes = max_crashes;
    }

    /// Crash steps already spent on process `p`.
    #[must_use]
    pub fn crashes(&self, p: ProcId) -> u32 {
        self.procs[p.index()].crashes
    }

    /// The current value of `reg` in shared memory (⊥ if never committed).
    #[must_use]
    pub fn memory(&self, reg: RegId) -> Value {
        self.mem.get(&reg).copied().unwrap_or(Value::Bot)
    }

    /// The operation process `p` is poised to execute (`next_p(C)`), or
    /// [`Poised::Done`] if `p` has returned.
    #[must_use]
    pub fn poised(&self, p: ProcId) -> Poised {
        let slot = &self.procs[p.index()];
        if slot.returned.is_some() {
            Poised::Done
        } else {
            slot.prog.poised()
        }
    }

    /// Whether `p` is in a final state.
    #[must_use]
    pub fn is_done(&self, p: ProcId) -> bool {
        self.procs[p.index()].returned.is_some()
    }

    /// Whether every process is in a final state.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.procs.iter().all(|s| s.returned.is_some())
    }

    /// The number of processes in a final state (the paper's `NbFinal(C)`).
    #[must_use]
    pub fn nb_final(&self) -> u64 {
        self.procs.iter().filter(|s| s.returned.is_some()).count() as u64
    }

    /// The value `p` returned, if it has.
    #[must_use]
    pub fn return_value(&self, p: ProcId) -> Option<u64> {
        self.procs[p.index()].returned
    }

    /// All return values, indexed by process id (`None` for unfinished).
    #[must_use]
    pub fn return_values(&self) -> Vec<Option<u64>> {
        self.procs.iter().map(|s| s.returned).collect()
    }

    /// Process `p`'s write buffer.
    #[must_use]
    pub fn buffer(&self, p: ProcId) -> &WriteBuffer {
        &self.procs[p.index()].buffer
    }

    /// Process `p`'s program state (for static-analysis hooks such as
    /// [`Process::future_access`]).
    #[must_use]
    pub fn process(&self, p: ProcId) -> &P {
        &self.procs[p.index()].prog
    }

    /// Whether `p`'s write buffer is empty.
    #[must_use]
    pub fn buffer_is_empty(&self, p: ProcId) -> bool {
        self.procs[p.index()].buffer.is_empty()
    }

    /// Process `p`'s program annotation (see
    /// [`Process::annotation`]).
    #[must_use]
    pub fn annotation(&self, p: ProcId) -> u64 {
        self.procs[p.index()].prog.annotation()
    }

    /// Fence/RMR accounting so far.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The recorded trace (empty unless `record_trace` was set).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The locality tracker (caches and commit ownership).
    #[must_use]
    pub fn locality(&self) -> &LocalityTracker {
        &self.locality
    }

    /// Hash the behaviourally relevant state (exactly what
    /// [`state_key`](Self::state_key) captures) directly into `h`, without
    /// materializing a snapshot. The model checker fingerprints every
    /// explored state, so this path must not allocate.
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash as _;
        self.mem.len().hash(h);
        for (reg, value) in &self.mem {
            reg.hash(h);
            value.hash(h);
        }
        self.procs.len().hash(h);
        for slot in &self.procs {
            slot.prog.hash(h);
            slot.buffer.hash(h);
            slot.returned.hash(h);
            slot.crashes.hash(h);
        }
    }

    /// A hashable snapshot of the behaviourally relevant state.
    #[must_use]
    pub fn state_key(&self) -> StateKey<P> {
        StateKey {
            mem: self.mem.iter().map(|(&r, &v)| (r, v)).collect(),
            procs: self
                .procs
                .iter()
                .map(|s| (s.prog.clone(), s.buffer.clone(), s.returned, s.crashes))
                .collect(),
        }
    }

    /// Apply one schedule element, following the paper's rule:
    ///
    /// 1. If the element names a register `R` and `p` has a committable
    ///    buffered write to `R`, the step commits it.
    /// 2. Otherwise, if `p` is poised at `fence()` with a non-empty buffer,
    ///    the step commits the write to the smallest buffered register
    ///    (oldest, under TSO).
    /// 3. Otherwise the step performs `p`'s poised operation (read, write,
    ///    fence, or return). If `p` is in a final state, nothing happens.
    pub fn step(&mut self, elem: SchedElem) -> StepOutcome {
        self.step_impl(elem, &mut ())
    }

    /// Like [`step`](Self::step), but also returns an [`UndoToken`] that
    /// [`undo`](Self::undo) accepts to restore the pre-step machine —
    /// counters, caches, ownership, and trace included — in O(footprint)
    /// time. A `NoOp` step yields a trivial (but still valid) token.
    pub fn step_recorded(&mut self, elem: SchedElem) -> (StepOutcome, UndoToken<P>) {
        let i = elem.proc.index();
        let mut token = UndoToken {
            proc: elem.proc,
            footprint: self.choice_footprint(elem),
            prog: None,
            returned: self.procs[i].returned,
            buffer: BufferUndo::None,
            mem: None,
            committer: None,
            cache: [None, None],
            counters: *self.counters.proc(i),
            crashes: self.procs[i].crashes,
            crash: None,
            next_nonce: self.next_nonce,
            trace_len: self.trace.len(),
        };
        let out = self.step_impl(elem, &mut token);
        (out, token)
    }

    /// Reverse the step that produced `token`. Tokens must be applied to
    /// the machine that produced them, newest first (LIFO) — the depth-first
    /// search discipline.
    pub fn undo(&mut self, token: UndoToken<P>) {
        self.obs.on_undo();
        let i = token.proc.index();
        let slot = &mut self.procs[i];
        if let Some(prog) = token.prog {
            slot.prog = prog;
        }
        slot.returned = token.returned;
        slot.buffer.apply_undo(token.buffer);
        if let Some((reg, old)) = token.mem {
            match old {
                Some(v) => {
                    self.mem.insert(reg, v);
                }
                None => {
                    self.mem.remove(&reg);
                }
            }
        }
        if let Some((reg, old)) = token.committer {
            self.locality.set_last_committer(reg, old);
        }
        for (reg, value) in token.cache.into_iter().flatten() {
            self.locality.unobserve(token.proc, reg, value);
        }
        if let Some(crash) = token.crash {
            // Reverse a crash: restore the pre-crash buffer wholesale, then
            // roll back the drain's commits newest-first (LIFO — a TSO drain
            // can commit the same register twice).
            self.procs[i].buffer = crash.buffer;
            for (reg, old) in crash.mem.into_iter().rev() {
                match old {
                    Some(v) => {
                        self.mem.insert(reg, v);
                    }
                    None => {
                        self.mem.remove(&reg);
                    }
                }
            }
            for (reg, old) in crash.committers.into_iter().rev() {
                self.locality.set_last_committer(reg, old);
            }
        }
        self.procs[i].crashes = token.crashes;
        *self.counters.proc_mut(i) = token.counters;
        self.next_nonce = token.next_nonce;
        self.trace.truncate(token.trace_len);
    }

    fn step_impl<U: UndoSink<P>>(&mut self, elem: SchedElem, u: &mut U) -> StepOutcome {
        let p = elem.proc;
        if self.is_done(p) {
            return StepOutcome::NoOp;
        }
        if elem.crash {
            return self.do_crash(p, u);
        }
        if let Some(reg) = elem.reg {
            if self.procs[p.index()].buffer.can_commit(reg) {
                return self.do_commit(p, reg, u);
            }
        }
        match self.poised(p) {
            Poised::Fence => {
                if let Some(reg) = self.procs[p.index()].buffer.fence_commit_target() {
                    self.do_commit(p, reg, u)
                } else {
                    self.counters.proc_mut(p.index()).fences += 1;
                    u.save_prog(&self.procs[p.index()].prog);
                    self.procs[p.index()].prog.advance(None);
                    self.emit(p, EventKind::Fence)
                }
            }
            Poised::Cas { reg, expected, new } => {
                // A CAS orders the store buffer like a fence: drain first.
                if let Some(target) = self.procs[p.index()].buffer.fence_commit_target() {
                    self.do_commit(p, target, u)
                } else {
                    self.do_cas(p, reg, expected, new, u)
                }
            }
            Poised::Swap { reg, new } => {
                if let Some(target) = self.procs[p.index()].buffer.fence_commit_target() {
                    self.do_commit(p, target, u)
                } else {
                    self.do_swap(p, reg, new, u)
                }
            }
            Poised::Read(reg) => self.do_read(p, reg, u),
            Poised::Write(reg, value) => self.do_write(p, reg, value, u),
            Poised::Return(value) => {
                self.procs[p.index()].returned = Some(value);
                self.emit(p, EventKind::Return { value })
            }
            Poised::Done => StepOutcome::NoOp,
        }
    }

    fn do_read<U: UndoSink<P>>(&mut self, p: ProcId, reg: RegId, u: &mut U) -> StepOutcome {
        let (value, from_memory) = match self.procs[p.index()].buffer.read(reg) {
            Some(v) => (v, false),
            None => (self.memory(reg), true),
        };
        let local = self
            .locality
            .read_is_local(&self.config.layout, p, reg, value);
        let c = self.counters.proc_mut(p.index());
        c.reads += 1;
        if !from_memory {
            c.buffer_reads += 1;
        }
        if !local {
            c.remote_reads += 1;
            c.rmrs += 1;
        }
        if self.locality.observe(p, reg, value) {
            u.cache_inserted(reg, value);
        }
        u.save_prog(&self.procs[p.index()].prog);
        self.procs[p.index()].prog.advance(Some(value));
        self.emit(
            p,
            EventKind::Read {
                reg,
                value,
                from_memory,
                remote: !local,
            },
        )
    }

    fn do_write<U: UndoSink<P>>(
        &mut self,
        p: ProcId,
        reg: RegId,
        value: Value,
        u: &mut U,
    ) -> StepOutcome {
        let value = if self.config.tag_writes {
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            Value::Tagged {
                payload: value.payload(),
                nonce,
            }
        } else {
            value
        };
        self.counters.proc_mut(p.index()).writes += 1;
        if self.locality.observe(p, reg, value) {
            u.cache_inserted(reg, value);
        }
        u.save_prog(&self.procs[p.index()].prog);
        self.procs[p.index()].prog.advance(None);
        if self.config.model.buffers_writes() {
            let undo = self.procs[p.index()].buffer.push_recorded(reg, value);
            u.buffer_mutated(undo);
            self.emit(p, EventKind::Write { reg, value })
        } else {
            // SC: the write commits immediately; record both effects.
            if self.config.record_trace {
                self.trace.push(Event {
                    proc: p,
                    kind: EventKind::Write { reg, value },
                });
            }
            // The Write half bypasses `emit` here (only the Commit goes
            // through it), so count it directly; the pc is attributed by
            // the Commit's `emit`.
            self.obs
                .record_step(p.index(), ftobs::StepClass::Write { buffer_depth: 0 }, None);
            self.commit_to_memory(p, reg, value, u)
        }
    }

    fn do_cas<U: UndoSink<P>>(
        &mut self,
        p: ProcId,
        reg: RegId,
        expected: u64,
        new: Value,
        u: &mut U,
    ) -> StepOutcome {
        debug_assert!(
            self.procs[p.index()].buffer.is_empty(),
            "CAS requires a drained buffer"
        );
        let observed = self.memory(reg);
        let success = observed.payload() == expected;
        let (stored, local) = if success {
            // A successful CAS writes memory: charge it like a commit.
            let local = self.locality.commit_is_local(&self.config.layout, p, reg);
            let value = if self.config.tag_writes {
                let nonce = self.next_nonce;
                self.next_nonce += 1;
                Value::Tagged {
                    payload: new.payload(),
                    nonce,
                }
            } else {
                new
            };
            u.mem_overwritten(reg, self.mem.insert(reg, value));
            u.committer_moved(reg, self.locality.record_commit(p, reg));
            if self.locality.observe(p, reg, value) {
                u.cache_inserted(reg, value);
            }
            (Some(value), local)
        } else {
            // A failed CAS only observes: charge it like a read.
            let local = self
                .locality
                .read_is_local(&self.config.layout, p, reg, observed);
            (None, local)
        };
        if self.locality.observe(p, reg, observed) {
            u.cache_inserted(reg, observed);
        }
        let c = self.counters.proc_mut(p.index());
        c.cas_ops += 1;
        if !local {
            c.remote_cas += 1;
            c.rmrs += 1;
        }
        u.save_prog(&self.procs[p.index()].prog);
        self.procs[p.index()].prog.advance(Some(observed));
        self.emit(
            p,
            EventKind::Cas {
                reg,
                observed,
                stored,
                remote: !local,
            },
        )
    }

    fn do_swap<U: UndoSink<P>>(
        &mut self,
        p: ProcId,
        reg: RegId,
        new: Value,
        u: &mut U,
    ) -> StepOutcome {
        debug_assert!(
            self.procs[p.index()].buffer.is_empty(),
            "swap requires a drained buffer"
        );
        let observed = self.memory(reg);
        // A swap always writes memory: charge it by the commit rule.
        let local = self.locality.commit_is_local(&self.config.layout, p, reg);
        let stored = if self.config.tag_writes {
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            Value::Tagged {
                payload: new.payload(),
                nonce,
            }
        } else {
            new
        };
        u.mem_overwritten(reg, self.mem.insert(reg, stored));
        u.committer_moved(reg, self.locality.record_commit(p, reg));
        if self.locality.observe(p, reg, stored) {
            u.cache_inserted(reg, stored);
        }
        if self.locality.observe(p, reg, observed) {
            u.cache_inserted(reg, observed);
        }
        let c = self.counters.proc_mut(p.index());
        c.swap_ops += 1;
        if !local {
            c.remote_swaps += 1;
            c.rmrs += 1;
        }
        u.save_prog(&self.procs[p.index()].prog);
        self.procs[p.index()].prog.advance(Some(observed));
        self.emit(
            p,
            EventKind::Swap {
                reg,
                observed,
                stored,
                remote: !local,
            },
        )
    }

    /// Crash process `p`: apply the configured buffer semantics, wipe the
    /// program back to its recovery entry, spend one unit of crash budget.
    /// A no-op if crash injection is off, `p`'s budget is exhausted, or
    /// `p`'s program is not recoverable.
    fn do_crash<U: UndoSink<P>>(&mut self, p: ProcId, u: &mut U) -> StepOutcome {
        let i = p.index();
        if self.config.max_crashes == 0
            || self.procs[i].crashes >= self.config.max_crashes
            || !self.procs[i].prog.recoverable()
        {
            return StepOutcome::NoOp;
        }
        let pre_buffer = self.procs[i].buffer.clone();
        let mut rec = CrashRecorder::default();
        let lost = match self.config.crash_semantics {
            CrashSemantics::DiscardBuffer => {
                let lost = pre_buffer.len();
                self.procs[i].buffer = WriteBuffer::new(self.config.model);
                lost
            }
            CrashSemantics::DrainBuffer => {
                // Flush in fence-drain order: FIFO under TSO, smallest
                // register first under PSO. Each commit is charged and
                // traced like any other.
                while let Some(reg) = self.procs[i].buffer.fence_commit_target() {
                    match self.procs[i].buffer.take(reg) {
                        Some(value) => {
                            self.commit_to_memory(p, reg, value, &mut rec);
                        }
                        None => {
                            debug_assert!(false, "fence commit target is committable");
                            break;
                        }
                    }
                }
                0
            }
        };
        u.save_prog(&self.procs[i].prog);
        u.crashed(Box::new(CrashUndo {
            buffer: pre_buffer,
            mem: rec.mem,
            committers: rec.committers,
        }));
        self.procs[i].prog.crash_recover();
        self.procs[i].crashes += 1;
        self.counters.proc_mut(i).crashes += 1;
        self.emit(p, EventKind::Crash { lost })
    }

    fn do_commit<U: UndoSink<P>>(&mut self, p: ProcId, reg: RegId, u: &mut U) -> StepOutcome {
        let (value, undo) = self.procs[p.index()].buffer.take_recorded(reg);
        let Some(value) = value else {
            // Callers establish committability first; reaching this arm is a
            // machine bug, not a schedulable outcome.
            debug_assert!(false, "do_commit requires a committable buffered write");
            return StepOutcome::NoOp;
        };
        u.buffer_mutated(undo);
        self.commit_to_memory(p, reg, value, u)
    }

    fn commit_to_memory<U: UndoSink<P>>(
        &mut self,
        p: ProcId,
        reg: RegId,
        value: Value,
        u: &mut U,
    ) -> StepOutcome {
        let local = self.locality.commit_is_local(&self.config.layout, p, reg);
        u.mem_overwritten(reg, self.mem.insert(reg, value));
        u.committer_moved(reg, self.locality.record_commit(p, reg));
        let c = self.counters.proc_mut(p.index());
        c.commits += 1;
        if !local {
            c.remote_commits += 1;
            c.rmrs += 1;
        }
        self.emit(
            p,
            EventKind::Commit {
                reg,
                value,
                remote: !local,
            },
        )
    }

    fn emit(&mut self, p: ProcId, kind: EventKind) -> StepOutcome {
        let event = Event { proc: p, kind };
        if self.config.record_trace {
            self.trace.push(event.clone());
        }
        // `emit` is the single funnel for every executed event (crash
        // drain-commits and SC immediate commits included), so one
        // classification here covers all step paths. The disabled-recorder
        // fast path is this one branch.
        if self.obs.is_enabled() {
            let class = match event.kind {
                EventKind::Read {
                    from_memory,
                    remote,
                    ..
                } => ftobs::StepClass::Read {
                    buffered: !from_memory,
                    remote,
                },
                EventKind::Write { .. } => ftobs::StepClass::Write {
                    buffer_depth: self.procs[p.index()].buffer.len() as u64,
                },
                EventKind::Fence => ftobs::StepClass::Fence,
                EventKind::Cas { remote, .. } => ftobs::StepClass::Cas { remote },
                EventKind::Commit { remote, .. } => ftobs::StepClass::Commit { remote },
                EventKind::Swap { remote, .. } => ftobs::StepClass::Swap { remote },
                EventKind::Return { .. } => ftobs::StepClass::Return,
                EventKind::Crash { .. } => ftobs::StepClass::Crash,
            };
            let pc = self.procs[p.index()].prog.obs_pc();
            self.obs.record_step(p.index(), class, pc);
        }
        StepOutcome::Stepped(event)
    }

    /// Like [`step`](Self::step), but validates the element first and
    /// returns a typed error instead of panicking when the element names a
    /// process the machine does not have.
    ///
    /// # Errors
    ///
    /// [`MachineError::NoSuchProc`] if `elem.proc` is outside `0..n`.
    pub fn try_step(&mut self, elem: SchedElem) -> Result<StepOutcome, MachineError> {
        if elem.proc.index() >= self.procs.len() {
            return Err(MachineError::NoSuchProc {
                proc: elem.proc,
                n: self.procs.len(),
            });
        }
        Ok(self.step(elem))
    }

    /// Apply a whole schedule; returns the number of elements that produced
    /// a step.
    pub fn run_schedule(&mut self, schedule: &[SchedElem]) -> usize {
        schedule
            .iter()
            .filter(|&&e| matches!(self.step(e), StepOutcome::Stepped(_)))
            .count()
    }

    /// Apply a whole schedule through [`try_step`](Self::try_step); returns
    /// the number of effective steps, or the first validation error.
    ///
    /// # Errors
    ///
    /// The first [`MachineError`] any element produces.
    pub fn try_run_schedule(&mut self, schedule: &[SchedElem]) -> Result<usize, MachineError> {
        let mut steps = 0;
        for &e in schedule {
            if matches!(self.try_step(e)?, StepOutcome::Stepped(_)) {
                steps += 1;
            }
        }
        Ok(steps)
    }

    /// Run `(p, ⊥)` elements until `p` finishes or `max_steps` effective
    /// steps elapse. Returns the solo outcome; the machine is mutated.
    pub fn run_solo(&mut self, p: ProcId, max_steps: usize) -> SoloOutcome {
        for steps in 0..max_steps {
            if let Some(ret) = self.return_value(p) {
                return SoloOutcome::Terminates { steps, ret };
            }
            self.step(SchedElem::op(p));
        }
        match self.return_value(p) {
            Some(ret) => SoloOutcome::Terminates {
                steps: max_steps,
                ret,
            },
            None => SoloOutcome::Unknown,
        }
    }

    /// Decide whether `p` would enter a final state running alone from the
    /// current configuration, **without mutating the machine**.
    ///
    /// Since processes are deterministic and a solo run with eager commits
    /// is unique, divergence is detected exactly: if the solo run revisits a
    /// configuration (process state, buffer, and memory overlay), it spins
    /// forever. `max_steps` is a safety bound for genuinely unbounded
    /// progress; exceeding it yields [`SoloOutcome::Unknown`].
    #[must_use]
    pub fn solo_outcome(&self, p: ProcId, max_steps: usize) -> SoloOutcome {
        if let Some(ret) = self.return_value(p) {
            return SoloOutcome::Terminates { steps: 0, ret };
        }
        let slot = &self.procs[p.index()];
        let mut prog = slot.prog.clone();
        let mut buffer = slot.buffer.clone();
        // Commits during the solo run land in an overlay so we never clone
        // or mutate shared memory.
        let mut overlay: HashMap<RegId, Value> = HashMap::new();
        type SoloState<P> = (P, WriteBuffer, Vec<(RegId, Value)>);
        let mut seen: HashSet<SoloState<P>> = HashSet::new();

        for steps in 0..max_steps {
            let mut overlay_key: Vec<(RegId, Value)> =
                overlay.iter().map(|(&r, &v)| (r, v)).collect();
            overlay_key.sort_unstable();
            if !seen.insert((prog.clone(), buffer.clone(), overlay_key)) {
                return SoloOutcome::Diverges { steps };
            }
            match prog.poised() {
                Poised::Return(ret) => return SoloOutcome::Terminates { steps, ret },
                Poised::Done => {
                    // A `Process` reporting Done without the machine having
                    // seen its return step cannot occur for well-formed
                    // programs; treat it as termination with value 0.
                    return SoloOutcome::Terminates { steps, ret: 0 };
                }
                Poised::Fence => {
                    if let Some(reg) = buffer.fence_commit_target() {
                        let Some(v) = buffer.take(reg) else {
                            debug_assert!(false, "fence target is committable");
                            return SoloOutcome::Unknown;
                        };
                        overlay.insert(reg, v);
                    } else {
                        prog.advance(None);
                    }
                }
                Poised::Cas { reg, expected, new } => {
                    if let Some(target) = buffer.fence_commit_target() {
                        let Some(v) = buffer.take(target) else {
                            debug_assert!(false, "fence target is committable");
                            return SoloOutcome::Unknown;
                        };
                        overlay.insert(target, v);
                    } else {
                        let observed = overlay
                            .get(&reg)
                            .copied()
                            .unwrap_or_else(|| self.memory(reg));
                        if observed.payload() == expected {
                            overlay.insert(reg, new);
                        }
                        prog.advance(Some(observed));
                    }
                }
                Poised::Swap { reg, new } => {
                    if let Some(target) = buffer.fence_commit_target() {
                        let Some(v) = buffer.take(target) else {
                            debug_assert!(false, "fence target is committable");
                            return SoloOutcome::Unknown;
                        };
                        overlay.insert(target, v);
                    } else {
                        let observed = overlay
                            .get(&reg)
                            .copied()
                            .unwrap_or_else(|| self.memory(reg));
                        overlay.insert(reg, new);
                        prog.advance(Some(observed));
                    }
                }
                Poised::Read(reg) => {
                    let v = buffer
                        .read(reg)
                        .or_else(|| overlay.get(&reg).copied())
                        .unwrap_or_else(|| self.memory(reg));
                    prog.advance(Some(v));
                }
                Poised::Write(reg, value) => {
                    // Tagging is irrelevant to control flow (programs see
                    // only payloads), so solo runs skip it.
                    prog.advance(None);
                    if self.config.model.buffers_writes() {
                        buffer.push(reg, value);
                    } else {
                        overlay.insert(reg, value);
                    }
                }
            }
        }
        SoloOutcome::Unknown
    }

    /// The dependence footprint of schedule element `elem` in the current
    /// configuration, *without* taking the step: which shared cell the step
    /// would read, write, or commit, classified for the independence
    /// relation ([`Footprint::independent`]).
    ///
    /// The prediction mirrors [`step`](Self::step)'s three-case rule
    /// exactly, and [`step_recorded`](Self::step_recorded) stamps it on the
    /// token it returns; a disabled element (no-op) reports `Local`.
    #[must_use]
    pub fn choice_footprint(&self, elem: SchedElem) -> Footprint {
        let p = elem.proc;
        let slot = &self.procs[p.index()];
        let kind = if slot.returned.is_some() {
            FootprintKind::Local // no-op
        } else if elem.crash {
            if self.config.max_crashes == 0
                || slot.crashes >= self.config.max_crashes
                || !slot.prog.recoverable()
            {
                FootprintKind::Local // no-op
            } else {
                FootprintKind::Crash {
                    drains: self.config.crash_semantics == CrashSemantics::DrainBuffer
                        && !slot.buffer.is_empty(),
                }
            }
        } else if let Some(reg) = elem.reg.filter(|&r| slot.buffer.can_commit(r)) {
            FootprintKind::Commit(reg)
        } else {
            match slot.prog.poised() {
                Poised::Fence => match slot.buffer.fence_commit_target() {
                    Some(target) => FootprintKind::Commit(target),
                    None => FootprintKind::Local,
                },
                Poised::Cas { reg, expected, .. } => match slot.buffer.fence_commit_target() {
                    Some(target) => FootprintKind::Commit(target),
                    None if self.memory(reg).payload() == expected => FootprintKind::Write(reg),
                    None => FootprintKind::Read(reg),
                },
                Poised::Swap { reg, .. } => match slot.buffer.fence_commit_target() {
                    Some(target) => FootprintKind::Commit(target),
                    None => FootprintKind::Write(reg),
                },
                Poised::Read(reg) => match slot.buffer.read(reg) {
                    Some(_) => FootprintKind::Local,
                    None => FootprintKind::Read(reg),
                },
                Poised::Write(reg, _) => {
                    if self.config.model.buffers_writes() {
                        FootprintKind::Local
                    } else {
                        FootprintKind::Write(reg)
                    }
                }
                Poised::Return(_) => FootprintKind::Return,
                Poised::Done => FootprintKind::Local,
            }
        };
        Footprint { proc: p, kind }
    }

    /// Every schedule element that would produce a step from the current
    /// configuration, with duplicates removed: all committable buffered
    /// writes of every unfinished process, plus `(p, ⊥)` where that is not
    /// just a synonym for the smallest-register fence commit, plus a crash
    /// of every process with crash budget left (when crash injection is
    /// enabled).
    #[must_use]
    pub fn choices(&self) -> Vec<SchedElem> {
        let mut out = Vec::new();
        self.choices_into(&mut out);
        out
    }

    /// [`choices`](Self::choices) into a caller-provided buffer (cleared
    /// first), so a search loop can reuse one allocation across nodes.
    pub fn choices_into(&self, out: &mut Vec<SchedElem>) {
        out.clear();
        for (i, slot) in self.procs.iter().enumerate() {
            if slot.returned.is_some() {
                continue;
            }
            let p = ProcId::from(i);
            slot.buffer
                .for_each_commit_choice(|reg| out.push(SchedElem::commit(p, reg)));
            let fence_blocked = matches!(
                slot.prog.poised(),
                Poised::Fence | Poised::Cas { .. } | Poised::Swap { .. }
            ) && !slot.buffer.is_empty();
            if !fence_blocked {
                out.push(SchedElem::op(p));
            }
            // A crash is schedulable even when `p` is fence-blocked —
            // crash-at-a-fence (writes still buffered) is exactly the
            // hazard recoverable algorithms must survive.
            if self.config.max_crashes > 0
                && slot.crashes < self.config.max_crashes
                && slot.prog.recoverable()
            {
                out.push(SchedElem::crash(p));
            }
        }
    }

    /// Re-materialize a previously explored state by replaying `path`
    /// from the current configuration: every element must be one of the
    /// state's [`choices`](Self::choices) and must produce an effective
    /// step. This is the work-stealing explorers' fork-point replay —
    /// O(path) instead of cloning another worker's machine, validated
    /// against [`choices_into`](Self::choices_into) at each step so a
    /// stale or corrupted path is detected instead of silently steered
    /// into a different state. `scratch` is the caller's reusable choice
    /// buffer.
    ///
    /// Returns `true` iff the whole path applied. On `false` the machine
    /// is left mid-path; callers must discard it (the explorers treat
    /// this as a logic error and panic into their sequential fallback).
    #[must_use]
    pub fn replay_path(&mut self, path: &[SchedElem], scratch: &mut Vec<SchedElem>) -> bool {
        for &e in path {
            self.choices_into(scratch);
            if !scratch.contains(&e) || matches!(self.step(e), StepOutcome::NoOp) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted process for tests: executes a fixed list of operations.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Script {
        ops: Vec<Poised>,
        pc: usize,
        last_read: Option<Value>,
    }

    impl Script {
        fn new(ops: Vec<Poised>) -> Self {
            Script {
                ops,
                pc: 0,
                last_read: None,
            }
        }
    }

    impl Process for Script {
        fn poised(&self) -> Poised {
            self.ops.get(self.pc).copied().unwrap_or(Poised::Done)
        }
        fn advance(&mut self, read_value: Option<Value>) {
            if read_value.is_some() {
                self.last_read = read_value;
            }
            self.pc += 1;
        }
        fn recoverable(&self) -> bool {
            true
        }
        fn crash_recover(&mut self) {
            self.pc = 0;
            self.last_read = None;
        }
    }

    fn r(i: u32) -> RegId {
        RegId(i)
    }
    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn pso_machine(procs: Vec<Script>) -> Machine<Script> {
        Machine::new(
            MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned()).with_trace(),
            procs,
        )
    }

    #[test]
    fn write_is_buffered_until_committed_pso() {
        let w = Script::new(vec![Poised::Write(r(0), Value::Int(1)), Poised::Return(0)]);
        let mut m = pso_machine(vec![w]);
        m.step(SchedElem::op(p(0)));
        assert_eq!(m.memory(r(0)), Value::Bot, "write must not be visible yet");
        assert!(m.buffer(p(0)).contains(r(0)));
        m.step(SchedElem::commit(p(0), r(0)));
        assert_eq!(m.memory(r(0)), Value::Int(1));
        assert!(m.buffer_is_empty(p(0)));
    }

    #[test]
    fn fence_blocks_until_buffer_empty() {
        let w = Script::new(vec![
            Poised::Write(r(3), Value::Int(1)),
            Poised::Write(r(1), Value::Int(2)),
            Poised::Fence,
            Poised::Return(0),
        ]);
        let mut m = pso_machine(vec![w]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::op(p(0)));
        // Fence with two buffered writes: first (p,⊥) commits smallest reg.
        let out = m.step(SchedElem::op(p(0)));
        assert!(matches!(
            out.event().map(|e| &e.kind),
            Some(EventKind::Commit { reg, .. }) if *reg == r(1)
        ));
        // Second commits the remaining write; third executes the fence.
        m.step(SchedElem::op(p(0)));
        let out = m.step(SchedElem::op(p(0)));
        assert!(matches!(
            out.event().map(|e| &e.kind),
            Some(EventKind::Fence)
        ));
        assert_eq!(m.counters().proc(0).fences, 1);
        m.step(SchedElem::op(p(0)));
        assert!(m.all_done());
    }

    #[test]
    fn reads_are_served_from_own_buffer() {
        let w = Script::new(vec![
            Poised::Write(r(0), Value::Int(9)),
            Poised::Read(r(0)),
            Poised::Return(0),
        ]);
        let mut m = pso_machine(vec![w]);
        m.step(SchedElem::op(p(0)));
        let out = m.step(SchedElem::op(p(0)));
        match out.event().map(|e| &e.kind) {
            Some(EventKind::Read {
                value,
                from_memory,
                remote,
                ..
            }) => {
                assert_eq!(*value, Value::Int(9));
                assert!(!from_memory);
                assert!(!remote, "buffer reads hit the cache");
            }
            other => panic!("expected read event, got {other:?}"),
        }
    }

    #[test]
    fn pso_allows_write_reordering_tso_does_not() {
        let writer = || {
            Script::new(vec![
                Poised::Write(r(0), Value::Int(1)),
                Poised::Write(r(1), Value::Int(2)),
                Poised::Return(0),
            ])
        };
        // PSO: the second write can commit first.
        let mut m = pso_machine(vec![writer()]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::op(p(0)));
        let out = m.step(SchedElem::commit(p(0), r(1)));
        assert!(matches!(out, StepOutcome::Stepped(_)));
        assert_eq!(m.memory(r(1)), Value::Int(2));
        assert_eq!(m.memory(r(0)), Value::Bot, "older write still pending");

        // TSO: naming the younger write falls through (no commit possible,
        // and the poised op — return — runs instead).
        let cfg = MachineConfig::new(MemoryModel::Tso, MemoryLayout::unowned());
        let mut m = Machine::new(cfg, vec![writer()]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::op(p(0)));
        let out = m.step(SchedElem::commit(p(0), r(1)));
        assert!(
            matches!(out.event().map(|e| &e.kind), Some(EventKind::Return { .. })),
            "TSO must not commit the younger write; the element falls through to return"
        );
        assert_eq!(m.memory(r(1)), Value::Bot);
    }

    #[test]
    fn sc_commits_writes_immediately() {
        let w = Script::new(vec![Poised::Write(r(0), Value::Int(5)), Poised::Return(0)]);
        let cfg = MachineConfig::new(MemoryModel::Sc, MemoryLayout::unowned()).with_trace();
        let mut m = Machine::new(cfg, vec![w]);
        let out = m.step(SchedElem::op(p(0)));
        assert!(matches!(
            out.event().map(|e| &e.kind),
            Some(EventKind::Commit { .. })
        ));
        assert_eq!(m.memory(r(0)), Value::Int(5));
        // The trace records both the write and the commit.
        assert_eq!(m.trace().len(), 2);
    }

    #[test]
    fn rmr_accounting_first_remote_then_cached() {
        // p1 reads a register twice; first read is remote, second is a
        // cache hit (same value).
        let reader = Script::new(vec![
            Poised::Read(r(0)),
            Poised::Read(r(0)),
            Poised::Return(0),
        ]);
        let mut m = pso_machine(vec![reader]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::op(p(0)));
        let c = m.counters().proc(0);
        assert_eq!(c.reads, 2);
        assert_eq!(c.remote_reads, 1);
        assert_eq!(c.rmrs, 1);
    }

    #[test]
    fn rmr_accounting_invalidation_by_other_writer() {
        // p0 reads R twice, p1 commits a new value in between: both of p0's
        // reads are remote.
        let reader = Script::new(vec![
            Poised::Read(r(0)),
            Poised::Read(r(0)),
            Poised::Return(0),
        ]);
        let writer = Script::new(vec![Poised::Write(r(0), Value::Int(1)), Poised::Return(0)]);
        let mut m = pso_machine(vec![reader, writer]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::op(p(1)));
        m.step(SchedElem::commit(p(1), r(0)));
        m.step(SchedElem::op(p(0)));
        assert_eq!(m.counters().proc(0).remote_reads, 2);
    }

    #[test]
    fn dsm_segment_reads_are_always_local() {
        let mut layout = MemoryLayout::unowned();
        layout.assign(r(0), p(0));
        let reader = Script::new(vec![Poised::Read(r(0)), Poised::Return(0)]);
        let cfg = MachineConfig::new(MemoryModel::Pso, layout);
        let mut m = Machine::new(cfg, vec![reader]);
        m.step(SchedElem::op(p(0)));
        assert_eq!(m.counters().proc(0).rmrs, 0);
    }

    #[test]
    fn commit_ownership_makes_repeat_commits_local() {
        let w = Script::new(vec![
            Poised::Write(r(0), Value::Int(1)),
            Poised::Write(r(0), Value::Int(2)),
            Poised::Return(0),
        ]);
        let mut m = pso_machine(vec![w]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::commit(p(0), r(0))); // first commit: remote
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::commit(p(0), r(0))); // second: local (owned)
        let c = m.counters().proc(0);
        assert_eq!(c.commits, 2);
        assert_eq!(c.remote_commits, 1);
    }

    #[test]
    fn return_records_value_and_finalizes() {
        let w = Script::new(vec![Poised::Return(42)]);
        let mut m = pso_machine(vec![w]);
        assert_eq!(m.nb_final(), 0);
        m.step(SchedElem::op(p(0)));
        assert_eq!(m.return_value(p(0)), Some(42));
        assert_eq!(m.nb_final(), 1);
        assert!(m.all_done());
        assert_eq!(m.poised(p(0)), Poised::Done);
        // Further elements are no-ops.
        assert_eq!(m.step(SchedElem::op(p(0))), StepOutcome::NoOp);
    }

    #[test]
    fn tagging_makes_written_values_unique() {
        let w = |reg| Script::new(vec![Poised::Write(reg, Value::Int(1)), Poised::Return(0)]);
        let cfg =
            MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned()).with_tagged_writes();
        let mut m = Machine::new(cfg, vec![w(r(0)), w(r(1))]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::op(p(1)));
        m.step(SchedElem::commit(p(0), r(0)));
        m.step(SchedElem::commit(p(1), r(1)));
        let a = m.memory(r(0));
        let b = m.memory(r(1));
        assert_ne!(a, b);
        assert_eq!(a.payload(), b.payload());
    }

    #[test]
    fn solo_outcome_detects_termination_and_divergence() {
        // Terminating: write, fence, return.
        let fin = Script::new(vec![
            Poised::Write(r(0), Value::Int(1)),
            Poised::Fence,
            Poised::Return(7),
        ]);
        // Diverging: spin reading r(9) forever (Script has no loops, so
        // emulate with a long repeat — divergence needs a real looping
        // process; use a custom one).
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct Spinner;
        impl Process for Spinner {
            fn poised(&self) -> Poised {
                Poised::Read(RegId(9))
            }
            fn advance(&mut self, _v: Option<Value>) {}
        }
        let m = pso_machine(vec![fin]);
        assert!(matches!(
            m.solo_outcome(p(0), 1000),
            SoloOutcome::Terminates { ret: 7, .. }
        ));

        let cfg = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned());
        let m = Machine::new(cfg, vec![Spinner]);
        assert!(matches!(
            m.solo_outcome(p(0), 1000),
            SoloOutcome::Diverges { .. }
        ));
    }

    #[test]
    fn solo_outcome_does_not_mutate() {
        let w = Script::new(vec![Poised::Write(r(0), Value::Int(1)), Poised::Return(0)]);
        let m = pso_machine(vec![w]);
        let key_before = m.state_key();
        let _ = m.solo_outcome(p(0), 100);
        assert_eq!(m.state_key(), key_before);
    }

    #[test]
    fn choices_enumerate_commits_and_ops() {
        let w = Script::new(vec![
            Poised::Write(r(0), Value::Int(1)),
            Poised::Write(r(1), Value::Int(2)),
            Poised::Fence,
            Poised::Return(0),
        ]);
        let mut m = pso_machine(vec![w]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::op(p(0)));
        // Fence-blocked with two buffered writes: exactly the two commits.
        let cs = m.choices();
        assert_eq!(
            cs,
            vec![SchedElem::commit(p(0), r(0)), SchedElem::commit(p(0), r(1))]
        );
    }

    #[test]
    fn choices_empty_iff_all_done() {
        let w = Script::new(vec![Poised::Return(0)]);
        let mut m = pso_machine(vec![w]);
        assert!(!m.choices().is_empty());
        m.step(SchedElem::op(p(0)));
        assert!(m.choices().is_empty());
        assert!(m.all_done());
    }

    #[test]
    fn state_key_ignores_counters() {
        let reader = Script::new(vec![
            Poised::Read(r(0)),
            Poised::Read(r(0)),
            Poised::Return(0),
        ]);
        let mut a = pso_machine(vec![reader.clone()]);
        let mut b = pso_machine(vec![reader]);
        a.step(SchedElem::op(p(0)));
        a.step(SchedElem::op(p(0)));
        b.step(SchedElem::op(p(0)));
        b.step(SchedElem::op(p(0)));
        assert_eq!(a.state_key(), b.state_key());
    }

    #[test]
    fn init_reg_sets_memory_without_accounting() {
        let reader = Script::new(vec![Poised::Read(r(5)), Poised::Return(0)]);
        let mut m = pso_machine(vec![reader]);
        m.init_reg(r(5), Value::Int(33));
        assert_eq!(m.memory(r(5)), Value::Int(33));
        assert_eq!(m.counters().total().commits, 0);
        m.step(SchedElem::op(p(0)));
        // First read of an init value is still remote (never observed).
        assert_eq!(m.counters().proc(0).remote_reads, 1);
    }

    #[test]
    fn run_schedule_counts_effective_steps() {
        let w = Script::new(vec![Poised::Write(r(0), Value::Int(1)), Poised::Return(0)]);
        let mut m = pso_machine(vec![w]);
        let sched = vec![
            SchedElem::op(p(0)),
            SchedElem::op(p(0)),
            SchedElem::op(p(0)),
        ];
        let steps = m.run_schedule(&sched);
        assert_eq!(steps, 2, "third element is a no-op after return");
    }

    #[test]
    fn tso_reads_see_youngest_own_buffered_write() {
        let w = Script::new(vec![
            Poised::Write(r(0), Value::Int(1)),
            Poised::Write(r(0), Value::Int(2)),
            Poised::Read(r(0)),
            Poised::Return(0),
        ]);
        let cfg = MachineConfig::new(MemoryModel::Tso, MemoryLayout::unowned());
        let mut m = Machine::new(cfg, vec![w]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::op(p(0)));
        let out = m.step(SchedElem::op(p(0)));
        match out.event().map(|e| &e.kind) {
            Some(EventKind::Read {
                value, from_memory, ..
            }) => {
                assert_eq!(*value, Value::Int(2), "youngest write wins");
                assert!(!from_memory);
            }
            other => panic!("expected read, got {other:?}"),
        }
        // Both queued entries still commit, in order.
        m.step(SchedElem::commit(p(0), r(0)));
        assert_eq!(m.memory(r(0)), Value::Int(1));
        m.step(SchedElem::commit(p(0), r(0)));
        assert_eq!(m.memory(r(0)), Value::Int(2));
    }

    #[test]
    fn tso_fence_drains_in_program_order() {
        let w = Script::new(vec![
            Poised::Write(r(9), Value::Int(1)),
            Poised::Write(r(2), Value::Int(2)),
            Poised::Fence,
            Poised::Return(0),
        ]);
        let cfg = MachineConfig::new(MemoryModel::Tso, MemoryLayout::unowned()).with_trace();
        let mut m = Machine::new(cfg, vec![w]);
        m.run_solo(p(0), 100);
        let commits: Vec<RegId> = m
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Commit { reg, .. } => Some(reg),
                _ => None,
            })
            .collect();
        assert_eq!(
            commits,
            vec![r(9), r(2)],
            "FIFO drain: program order, not register order"
        );
    }

    #[test]
    fn swap_observes_then_stores_unconditionally() {
        let w = Script::new(vec![
            Poised::Swap {
                reg: r(0),
                new: Value::Int(5),
            },
            Poised::Swap {
                reg: r(0),
                new: Value::Int(6),
            },
            Poised::Return(0),
        ]);
        let mut m = pso_machine(vec![w]);
        let out = m.step(SchedElem::op(p(0)));
        match out.event().map(|e| &e.kind) {
            Some(EventKind::Swap {
                observed,
                stored,
                remote,
                ..
            }) => {
                assert!(observed.is_bot());
                assert_eq!(stored.payload(), 5);
                assert!(remote, "first swap of an unowned register is remote");
            }
            other => panic!("expected swap, got {other:?}"),
        }
        let out = m.step(SchedElem::op(p(0)));
        match out.event().map(|e| &e.kind) {
            Some(EventKind::Swap {
                observed, remote, ..
            }) => {
                assert_eq!(observed.payload(), 5);
                assert!(!remote, "p owns the register after its own swap");
            }
            other => panic!("expected swap, got {other:?}"),
        }
        assert_eq!(m.memory(r(0)).payload(), 6);
        assert_eq!(m.counters().proc(0).swap_ops, 2);
        assert_eq!(m.counters().proc(0).remote_swaps, 1);
    }

    #[test]
    fn swap_drains_the_buffer_first() {
        let w = Script::new(vec![
            Poised::Write(r(3), Value::Int(7)),
            Poised::Swap {
                reg: r(0),
                new: Value::Int(1),
            },
            Poised::Return(0),
        ]);
        let mut m = pso_machine(vec![w]);
        m.step(SchedElem::op(p(0)));
        let out = m.step(SchedElem::op(p(0)));
        assert!(matches!(
            out.event().map(|e| &e.kind),
            Some(EventKind::Commit { .. })
        ));
        let out = m.step(SchedElem::op(p(0)));
        assert!(matches!(
            out.event().map(|e| &e.kind),
            Some(EventKind::Swap { .. })
        ));
    }

    #[test]
    fn cas_succeeds_and_fails_by_payload() {
        let w = Script::new(vec![
            Poised::Cas {
                reg: r(0),
                expected: 0,
                new: Value::Int(5),
            }, // ⊥ payload 0 → succeeds
            Poised::Cas {
                reg: r(0),
                expected: 0,
                new: Value::Int(9),
            }, // now 5 → fails
            Poised::Return(0),
        ]);
        let mut m = pso_machine(vec![w]);
        let out = m.step(SchedElem::op(p(0)));
        match out.event().map(|e| &e.kind) {
            Some(EventKind::Cas { stored, remote, .. }) => {
                assert_eq!(*stored, Some(Value::Int(5)));
                assert!(remote, "first CAS of an unowned register is remote");
            }
            other => panic!("expected cas event, got {other:?}"),
        }
        let out = m.step(SchedElem::op(p(0)));
        match out.event().map(|e| &e.kind) {
            Some(EventKind::Cas {
                stored,
                observed,
                remote,
                ..
            }) => {
                assert_eq!(*stored, None, "payload 5 != expected 0");
                assert_eq!(*observed, Value::Int(5));
                assert!(!remote, "p owns the register after its own CAS commit");
            }
            other => panic!("expected cas event, got {other:?}"),
        }
        assert_eq!(m.memory(r(0)), Value::Int(5));
        assert_eq!(m.counters().proc(0).cas_ops, 2);
        assert_eq!(m.counters().proc(0).remote_cas, 1);
    }

    #[test]
    fn cas_drains_the_buffer_first() {
        let w = Script::new(vec![
            Poised::Write(r(3), Value::Int(7)),
            Poised::Cas {
                reg: r(0),
                expected: 0,
                new: Value::Int(1),
            },
            Poised::Return(0),
        ]);
        let mut m = pso_machine(vec![w]);
        m.step(SchedElem::op(p(0))); // buffered write
        let out = m.step(SchedElem::op(p(0))); // cas poised, buffer non-empty → commit
        assert!(matches!(
            out.event().map(|e| &e.kind),
            Some(EventKind::Commit { .. })
        ));
        assert_eq!(m.memory(r(3)), Value::Int(7));
        let out = m.step(SchedElem::op(p(0))); // now the CAS itself
        assert!(matches!(
            out.event().map(|e| &e.kind),
            Some(EventKind::Cas { .. })
        ));
    }

    #[test]
    fn cas_atomicity_under_contention() {
        // Two processes race a CAS on the same register: exactly one wins.
        let racer = || {
            Script::new(vec![
                Poised::Cas {
                    reg: r(0),
                    expected: 0,
                    new: Value::Int(1),
                },
                Poised::Return(0),
            ])
        };
        let cfg =
            MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned()).with_tagged_writes();
        let mut m = Machine::new(cfg, vec![racer(), racer()]);
        let e0 = m.step(SchedElem::op(p(0)));
        let e1 = m.step(SchedElem::op(p(1)));
        let wins = [e0, e1]
            .iter()
            .filter(|o| {
                matches!(
                    o.event().map(|e| &e.kind),
                    Some(EventKind::Cas {
                        stored: Some(_),
                        ..
                    })
                )
            })
            .count();
        assert_eq!(wins, 1, "exactly one CAS succeeds");
    }

    #[test]
    fn solo_outcome_handles_cas() {
        let w = Script::new(vec![
            Poised::Write(r(1), Value::Int(2)),
            Poised::Cas {
                reg: r(0),
                expected: 0,
                new: Value::Int(1),
            },
            Poised::Return(4),
        ]);
        let m = pso_machine(vec![w]);
        assert!(matches!(
            m.solo_outcome(p(0), 100),
            SoloOutcome::Terminates { ret: 4, .. }
        ));
    }

    /// Capture everything a correct undo must restore — not just the
    /// behavioural state, but accounting, locality, trace, and nonces.
    fn full_snapshot(
        m: &Machine<Script>,
    ) -> (StateKey<Script>, Counters, LocalityTracker, Vec<Event>, u64) {
        (
            m.state_key(),
            m.counters().clone(),
            m.locality().clone(),
            m.trace().events().to_vec(),
            m.next_nonce,
        )
    }

    /// Drive a machine through every enabled choice depth-first, undoing on
    /// the way back, asserting the machine is restored exactly at every
    /// backtrack. Covers commits, fence drains, reads, writes, and returns
    /// for whichever scripts/model are supplied.
    fn assert_undo_round_trips(m: &mut Machine<Script>, depth: usize) {
        if depth == 0 {
            return;
        }
        for elem in m.choices() {
            let before = full_snapshot(m);
            let (out, token) = m.step_recorded(elem);
            if matches!(out, StepOutcome::Stepped(_)) {
                assert_undo_round_trips(m, depth - 1);
            }
            m.undo(token);
            assert_eq!(
                full_snapshot(m),
                before,
                "undo of {elem:?} must restore the machine"
            );
        }
    }

    #[test]
    fn undo_restores_machine_exactly_across_models() {
        let scripts = || {
            vec![
                Script::new(vec![
                    Poised::Write(r(0), Value::Int(1)),
                    Poised::Write(r(1), Value::Int(2)),
                    Poised::Fence,
                    Poised::Read(r(2)),
                    Poised::Return(0),
                ]),
                Script::new(vec![
                    Poised::Read(r(0)),
                    Poised::Write(r(2), Value::Int(3)),
                    Poised::Return(1),
                ]),
            ]
        };
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            let cfg = MachineConfig::new(model, MemoryLayout::unowned())
                .with_tagged_writes()
                .with_trace();
            let mut m = Machine::new(cfg, scripts());
            assert_undo_round_trips(&mut m, 6);
        }
    }

    #[test]
    fn undo_restores_cas_and_swap_steps() {
        let scripts = vec![
            Script::new(vec![
                Poised::Cas {
                    reg: r(0),
                    expected: 0,
                    new: Value::Int(5),
                },
                Poised::Swap {
                    reg: r(1),
                    new: Value::Int(6),
                },
                Poised::Return(0),
            ]),
            Script::new(vec![
                Poised::Cas {
                    reg: r(0),
                    expected: 0,
                    new: Value::Int(7),
                },
                Poised::Return(1),
            ]),
        ];
        let cfg = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned()).with_trace();
        let mut m = Machine::new(cfg, scripts);
        assert_undo_round_trips(&mut m, 5);
    }

    #[test]
    fn undo_of_noop_is_harmless() {
        let w = Script::new(vec![Poised::Return(0)]);
        let mut m = pso_machine(vec![w]);
        m.step(SchedElem::op(p(0)));
        let before = full_snapshot(&m);
        let (out, token) = m.step_recorded(SchedElem::op(p(0)));
        assert_eq!(out, StepOutcome::NoOp);
        m.undo(token);
        assert_eq!(full_snapshot(&m), before);
    }

    #[test]
    fn choices_into_reuses_buffer_and_matches_choices() {
        let w = Script::new(vec![
            Poised::Write(r(0), Value::Int(1)),
            Poised::Write(r(1), Value::Int(2)),
            Poised::Fence,
            Poised::Return(0),
        ]);
        let mut m = pso_machine(vec![w]);
        let mut buf = Vec::new();
        loop {
            m.choices_into(&mut buf);
            assert_eq!(buf, m.choices());
            match buf.first().copied() {
                Some(elem) => {
                    m.step(elem);
                }
                None => break,
            }
        }
        assert!(m.all_done());
    }

    #[test]
    fn replay_path_rematerializes_and_validates() {
        let w = Script::new(vec![
            Poised::Write(r(0), Value::Int(1)),
            Poised::Write(r(1), Value::Int(2)),
            Poised::Fence,
            Poised::Return(0),
        ]);
        let base = pso_machine(vec![w]);
        // Drive one copy forward, recording the schedule taken.
        let mut walked = base.clone();
        let mut path = Vec::new();
        let mut buf = Vec::new();
        loop {
            walked.choices_into(&mut buf);
            match buf.last().copied() {
                Some(e) => {
                    walked.step(e);
                    path.push(e);
                }
                None => break,
            }
        }
        assert!(!path.is_empty());
        // Replaying the schedule from a fresh copy reaches the same state.
        let mut replayed = base.clone();
        assert!(replayed.replay_path(&path, &mut buf));
        assert_eq!(replayed.state_key(), walked.state_key());
        // An element that is not a current choice is rejected.
        let mut fresh = base.clone();
        assert!(!fresh.replay_path(&[SchedElem::commit(ProcId::from(0usize), r(5))], &mut buf));
    }

    fn crash_machine(
        model: MemoryModel,
        semantics: CrashSemantics,
        max_crashes: u32,
        procs: Vec<Script>,
    ) -> Machine<Script> {
        let cfg = MachineConfig::new(model, MemoryLayout::unowned())
            .with_trace()
            .with_crashes(semantics, max_crashes);
        Machine::new(cfg, procs)
    }

    #[test]
    fn crash_discards_buffered_writes_and_restarts() {
        let w = Script::new(vec![Poised::Write(r(0), Value::Int(1)), Poised::Return(0)]);
        let mut m = crash_machine(MemoryModel::Pso, CrashSemantics::DiscardBuffer, 1, vec![w]);
        m.step(SchedElem::op(p(0)));
        assert!(m.buffer(p(0)).contains(r(0)));
        let out = m.step(SchedElem::crash(p(0)));
        assert!(matches!(
            out.event().map(|e| &e.kind),
            Some(EventKind::Crash { lost: 1 })
        ));
        assert!(m.buffer_is_empty(p(0)), "the buffered write is lost");
        assert_eq!(m.memory(r(0)), Value::Bot, "it never reached memory");
        assert_eq!(m.crashes(p(0)), 1);
        assert_eq!(m.counters().proc(0).crashes, 1);
        // The program restarted: it is poised at the write again.
        assert!(matches!(m.poised(p(0)), Poised::Write(_, _)));
    }

    #[test]
    fn crash_with_drain_semantics_flushes_the_buffer() {
        let w = Script::new(vec![
            Poised::Write(r(5), Value::Int(1)),
            Poised::Write(r(2), Value::Int(2)),
            Poised::Return(0),
        ]);
        let mut m = crash_machine(MemoryModel::Pso, CrashSemantics::DrainBuffer, 1, vec![w]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::op(p(0)));
        let out = m.step(SchedElem::crash(p(0)));
        assert!(matches!(
            out.event().map(|e| &e.kind),
            Some(EventKind::Crash { lost: 0 })
        ));
        assert!(m.buffer_is_empty(p(0)));
        assert_eq!(m.memory(r(5)), Value::Int(1));
        assert_eq!(m.memory(r(2)), Value::Int(2));
        assert_eq!(
            m.counters().proc(0).commits,
            2,
            "drained commits are charged"
        );
        // Trace: write, write, commit (smallest reg first), commit, crash.
        let kinds: Vec<&EventKind> = m.trace().events().iter().map(|e| &e.kind).collect();
        assert!(matches!(kinds[2], EventKind::Commit { reg, .. } if *reg == r(2)));
        assert!(matches!(kinds[3], EventKind::Commit { reg, .. } if *reg == r(5)));
        assert!(matches!(kinds[4], EventKind::Crash { .. }));
    }

    #[test]
    fn crash_respects_the_budget_and_recoverability() {
        // No budget: the crash element is a no-op.
        let w = || Script::new(vec![Poised::Write(r(0), Value::Int(1)), Poised::Return(0)]);
        let mut m = pso_machine(vec![w()]);
        assert_eq!(m.step(SchedElem::crash(p(0))), StepOutcome::NoOp);

        // Budget of 1: the second crash is a no-op.
        let mut m = crash_machine(
            MemoryModel::Pso,
            CrashSemantics::DiscardBuffer,
            1,
            vec![w()],
        );
        assert!(matches!(
            m.step(SchedElem::crash(p(0))),
            StepOutcome::Stepped(_)
        ));
        assert_eq!(m.step(SchedElem::crash(p(0))), StepOutcome::NoOp);

        // Non-recoverable process: never crashes.
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct Rigid;
        impl Process for Rigid {
            fn poised(&self) -> Poised {
                Poised::Return(0)
            }
            fn advance(&mut self, _v: Option<Value>) {}
        }
        let cfg = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned())
            .with_crashes(CrashSemantics::DiscardBuffer, 2);
        let mut m = Machine::new(cfg, vec![Rigid]);
        assert_eq!(m.step(SchedElem::crash(p(0))), StepOutcome::NoOp);
        assert!(m.choices().iter().all(|e| !e.crash));
    }

    #[test]
    fn choices_offer_crashes_only_under_a_budget() {
        let w = || Script::new(vec![Poised::Write(r(0), Value::Int(1)), Poised::Return(0)]);
        let m = pso_machine(vec![w()]);
        assert!(m.choices().iter().all(|e| !e.crash));

        let mut m = crash_machine(
            MemoryModel::Pso,
            CrashSemantics::DiscardBuffer,
            1,
            vec![w()],
        );
        assert_eq!(m.choices().iter().filter(|e| e.crash).count(), 1);
        // A fence-blocked process can still crash.
        let fenced = Script::new(vec![
            Poised::Write(r(0), Value::Int(1)),
            Poised::Fence,
            Poised::Return(0),
        ]);
        let mut mf = crash_machine(
            MemoryModel::Pso,
            CrashSemantics::DiscardBuffer,
            1,
            vec![fenced],
        );
        mf.step(SchedElem::op(p(0)));
        let cs = mf.choices();
        assert!(cs.iter().any(|e| e.crash));
        assert!(cs.iter().any(|e| e.reg.is_some()));
        // Once the budget is spent, the crash choice disappears.
        m.step(SchedElem::crash(p(0)));
        assert!(m.choices().iter().all(|e| !e.crash));
    }

    #[test]
    fn crash_state_is_behaviourally_relevant() {
        let w = || Script::new(vec![Poised::Write(r(0), Value::Int(1)), Poised::Return(0)]);
        let mut a = crash_machine(
            MemoryModel::Pso,
            CrashSemantics::DiscardBuffer,
            1,
            vec![w()],
        );
        let b = crash_machine(
            MemoryModel::Pso,
            CrashSemantics::DiscardBuffer,
            1,
            vec![w()],
        );
        a.step(SchedElem::crash(p(0)));
        // Post-crash, `a` is back at its initial program state but has spent
        // its budget — the state keys must differ.
        assert_ne!(a.state_key(), b.state_key());
        use std::hash::Hasher as _;
        let fp = |m: &Machine<Script>| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            m.hash_state(&mut h);
            h.finish()
        };
        assert_ne!(fp(&a), fp(&b));
    }

    #[test]
    fn undo_restores_crash_steps_exactly() {
        let scripts = || {
            vec![
                Script::new(vec![
                    Poised::Write(r(0), Value::Int(1)),
                    Poised::Write(r(1), Value::Int(2)),
                    Poised::Fence,
                    Poised::Return(0),
                ]),
                Script::new(vec![
                    Poised::Read(r(0)),
                    Poised::Write(r(0), Value::Int(3)),
                    Poised::Return(1),
                ]),
            ]
        };
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            for semantics in [CrashSemantics::DiscardBuffer, CrashSemantics::DrainBuffer] {
                let cfg = MachineConfig::new(model, MemoryLayout::unowned())
                    .with_tagged_writes()
                    .with_trace()
                    .with_crashes(semantics, 1);
                let mut m = Machine::new(cfg, scripts());
                assert_undo_round_trips(&mut m, 5);
            }
        }
    }

    #[test]
    fn undo_restores_tso_same_register_drain() {
        // A TSO drain can commit the same register twice; the LIFO rollback
        // must restore the intermediate value correctly.
        let w = Script::new(vec![
            Poised::Write(r(0), Value::Int(1)),
            Poised::Write(r(0), Value::Int(2)),
            Poised::Return(0),
        ]);
        let cfg = MachineConfig::new(MemoryModel::Tso, MemoryLayout::unowned())
            .with_trace()
            .with_crashes(CrashSemantics::DrainBuffer, 1);
        let mut m = Machine::new(cfg, vec![w]);
        m.step(SchedElem::op(p(0)));
        m.step(SchedElem::op(p(0)));
        let before = full_snapshot(&m);
        let (out, token) = m.step_recorded(SchedElem::crash(p(0)));
        assert!(matches!(out, StepOutcome::Stepped(_)));
        assert_eq!(m.memory(r(0)), Value::Int(2), "both entries drained");
        m.undo(token);
        assert_eq!(full_snapshot(&m), before);
    }

    #[test]
    fn try_step_rejects_unknown_processes() {
        let w = Script::new(vec![Poised::Return(0)]);
        let mut m = pso_machine(vec![w]);
        assert_eq!(
            m.try_step(SchedElem::op(p(7))),
            Err(MachineError::NoSuchProc { proc: p(7), n: 1 })
        );
        assert!(m.try_step(SchedElem::op(p(0))).is_ok());
        assert_eq!(m.try_run_schedule(&[SchedElem::op(p(0))]), Ok(0));
    }

    #[test]
    fn run_solo_terminates_process() {
        let w = Script::new(vec![
            Poised::Write(r(0), Value::Int(1)),
            Poised::Fence,
            Poised::Return(3),
        ]);
        let mut m = pso_machine(vec![w]);
        let out = m.run_solo(p(0), 100);
        assert!(matches!(out, SoloOutcome::Terminates { ret: 3, .. }));
        assert_eq!(m.memory(r(0)), Value::Int(1), "fence forced the commit");
    }

    /// Check, over an exhaustive bounded exploration, that
    /// `choice_footprint`'s prediction agrees with the step the machine
    /// actually takes (classified from the emitted event), and that
    /// `step_recorded` stamps that same footprint on its token.
    fn assert_footprints_predict_steps(m: &mut Machine<Script>, depth: usize) {
        if depth == 0 {
            return;
        }
        for elem in m.choices() {
            let predicted = m.choice_footprint(elem);
            assert_eq!(predicted.proc, elem.proc);
            let was_sc_write = !elem.crash
                && elem.reg.is_none()
                && !m.config().model.buffers_writes()
                && matches!(m.poised(elem.proc), Poised::Write(..));
            let drains_expected = elem.crash
                && m.config().crash_semantics == CrashSemantics::DrainBuffer
                && !m.buffer_is_empty(elem.proc);
            let (out, token) = m.step_recorded(elem);
            assert_eq!(token.footprint(), predicted, "token reports the footprint");
            let event = out.event().expect("choices() offers only real steps");
            let actual = match event.kind {
                EventKind::Read {
                    reg, from_memory, ..
                } => {
                    if from_memory {
                        FootprintKind::Read(reg)
                    } else {
                        FootprintKind::Local
                    }
                }
                EventKind::Write { .. } | EventKind::Fence => FootprintKind::Local,
                EventKind::Cas { reg, stored, .. } => {
                    if stored.is_some() {
                        FootprintKind::Write(reg)
                    } else {
                        FootprintKind::Read(reg)
                    }
                }
                EventKind::Swap { reg, .. } => FootprintKind::Write(reg),
                // An SC-mode write commits immediately; the primary event is
                // the commit, but the footprint classifies it as a program
                // write (both advance the program and write the cell).
                EventKind::Commit { reg, .. } if was_sc_write => FootprintKind::Write(reg),
                EventKind::Commit { reg, .. } => FootprintKind::Commit(reg),
                EventKind::Return { .. } => FootprintKind::Return,
                EventKind::Crash { .. } => FootprintKind::Crash {
                    drains: drains_expected,
                },
            };
            assert_eq!(
                predicted.kind, actual,
                "{elem:?}: predicted {predicted:?}, stepped to {event:?}"
            );
            assert_footprints_predict_steps(m, depth - 1);
            m.undo(token);
        }
    }

    #[test]
    fn footprint_prediction_matches_actual_steps() {
        let scripts = || {
            vec![
                Script::new(vec![
                    Poised::Write(r(0), Value::Int(1)),
                    Poised::Write(r(1), Value::Int(2)),
                    Poised::Fence,
                    Poised::Read(r(2)),
                    Poised::Return(0),
                ]),
                Script::new(vec![
                    Poised::Cas {
                        reg: r(0),
                        expected: 0,
                        new: Value::Int(5),
                    },
                    Poised::Swap {
                        reg: r(2),
                        new: Value::Int(6),
                    },
                    Poised::Read(r(1)),
                    Poised::Return(1),
                ]),
            ]
        };
        for model in MemoryModel::ALL {
            for (sem, crashes) in [
                (CrashSemantics::DiscardBuffer, 0),
                (CrashSemantics::DiscardBuffer, 1),
                (CrashSemantics::DrainBuffer, 1),
            ] {
                let cfg = MachineConfig::new(model, MemoryLayout::unowned())
                    .with_trace()
                    .with_crashes(sem, crashes);
                let mut m = Machine::new(cfg, scripts());
                assert_footprints_predict_steps(&mut m, 5);
            }
        }
    }
}
