//! Memory models.

use std::fmt;

/// The memory model governing write buffering and commit order.
///
/// The paper proves its lower bound in a machine with *unordered* write
/// buffers — exactly [`MemoryModel::Pso`] — and observes the bound holds a
/// fortiori for weaker models (RMO). Its upper bounds (the `GT_f` family)
/// order writes explicitly with fences and are therefore correct under every
/// model here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryModel {
    /// Sequential consistency: writes bypass the buffer and commit
    /// immediately; fences are no-ops.
    Sc,
    /// Total store order (x86/AMD): a FIFO write buffer. Reads may bypass
    /// buffered writes to *other* registers, but writes commit in program
    /// order.
    Tso,
    /// Partial store order (SPARC PSO) — the paper's machine: an unordered
    /// write buffer with at most one entry per register; the system may
    /// commit buffered writes in any order.
    Pso,
    /// Relaxed memory order (ARM/POWER/Alpha). Simulated identically to
    /// [`MemoryModel::Pso`]: the lower bound only exploits write reordering,
    /// and the algorithms under test order reads explicitly with fences, so
    /// read reordering is never observable in the executions we construct.
    Rmo,
}

impl MemoryModel {
    /// All supported models, strongest first.
    pub const ALL: [MemoryModel; 4] = [
        MemoryModel::Sc,
        MemoryModel::Tso,
        MemoryModel::Pso,
        MemoryModel::Rmo,
    ];

    /// Whether writes may be reordered with later writes (the property the
    /// paper's lower bound requires).
    #[must_use]
    pub fn reorders_writes(self) -> bool {
        matches!(self, MemoryModel::Pso | MemoryModel::Rmo)
    }

    /// Whether writes are buffered at all.
    #[must_use]
    pub fn buffers_writes(self) -> bool {
        !matches!(self, MemoryModel::Sc)
    }
}

impl fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MemoryModel::Sc => "SC",
            MemoryModel::Tso => "TSO",
            MemoryModel::Pso => "PSO",
            MemoryModel::Rmo => "RMO",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for MemoryModel {
    type Err = String;

    /// Inverse of `Display`, case-insensitive, so models round-trip
    /// through process boundaries (fleet job files, CLI args).
    fn from_str(s: &str) -> Result<MemoryModel, String> {
        match s.to_ascii_uppercase().as_str() {
            "SC" => Ok(MemoryModel::Sc),
            "TSO" => Ok(MemoryModel::Tso),
            "PSO" => Ok(MemoryModel::Pso),
            "RMO" => Ok(MemoryModel::Rmo),
            other => Err(format!("unknown memory model `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordering_classification() {
        assert!(!MemoryModel::Sc.reorders_writes());
        assert!(!MemoryModel::Tso.reorders_writes());
        assert!(MemoryModel::Pso.reorders_writes());
        assert!(MemoryModel::Rmo.reorders_writes());
    }

    #[test]
    fn buffering_classification() {
        assert!(!MemoryModel::Sc.buffers_writes());
        assert!(MemoryModel::Tso.buffers_writes());
        assert!(MemoryModel::Pso.buffers_writes());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = MemoryModel::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names, ["SC", "TSO", "PSO", "RMO"]);
    }
}
