//! The interface between programs and the machine.

use crate::reg::{RegId, RegSet};
use crate::value::Value;

/// An over-approximated set of registers, for static access summaries:
/// either a concrete [`RegSet`] or "anything" (the sound default when a
/// program computes addresses dynamically).
#[derive(Clone, Copy, Debug)]
pub enum AccessSet<'a> {
    /// Any register may be accessed.
    All,
    /// At most these registers may be accessed.
    Set(&'a RegSet),
}

impl AccessSet<'_> {
    /// Whether `reg` may be in the set.
    #[must_use]
    pub fn may_contain(self, reg: RegId) -> bool {
        match self {
            AccessSet::All => true,
            AccessSet::Set(s) => s.contains(reg),
        }
    }
}

/// A static over-approximation of a process's possible *future* shared
/// memory accesses, from its current control point to the end of every
/// path. See [`Process::future_access`].
#[derive(Clone, Copy, Debug)]
pub struct FutureAccess<'a> {
    /// Registers the process may still read (including via CAS/swap).
    pub reads: AccessSet<'a>,
    /// Registers the process may still write (including via CAS/swap and
    /// buffered writes it has not yet issued).
    pub writes: AccessSet<'a>,
}

impl FutureAccess<'_> {
    /// The conservative "may touch anything" summary.
    #[must_use]
    pub fn all() -> Self {
        FutureAccess {
            reads: AccessSet::All,
            writes: AccessSet::All,
        }
    }
}

/// The operation a process is poised to execute, as observed by the machine
/// before the corresponding step is taken.
///
/// This mirrors the paper's `next_p(C)`: a deterministic function of the
/// process's local state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Poised {
    /// `read(R)` — the step returns a value (from the write buffer if it
    /// holds a write to `R`, otherwise from shared memory).
    Read(RegId),
    /// `write(R, x)` — the write enters the process's write buffer (commits
    /// immediately under SC).
    Write(RegId, Value),
    /// `fence()` — the process cannot take further steps until its write
    /// buffer is empty.
    Fence,
    /// `cas(R, expected, new)` — a comparison primitive (the paper's §6
    /// extension): atomically, if `R`'s current payload equals `expected`,
    /// store `new`. Like a fence, it cannot execute until the write buffer
    /// has drained (real hardware CAS orders the store buffer).
    Cas {
        /// Register operated on.
        reg: RegId,
        /// Payload the current value must equal for the swap to happen.
        expected: u64,
        /// Value stored on success.
        new: Value,
    },
    /// `swap(R, new)` — fetch-and-store (used by queue locks such as MCS):
    /// atomically store `new` and observe the previous value. Like CAS, it
    /// drains the write buffer before executing.
    Swap {
        /// Register operated on.
        reg: RegId,
        /// Value stored unconditionally.
        new: Value,
    },
    /// `return(x)` — the process enters a final state with value `x`.
    Return(u64),
    /// The process is in a final state (`next_p(C) = ∅`).
    Done,
}

impl Poised {
    /// The shape of the poised operation, without operands.
    #[must_use]
    pub fn kind(self) -> PoisedKind {
        match self {
            Poised::Read(_) => PoisedKind::Read,
            Poised::Write(_, _) => PoisedKind::Write,
            Poised::Fence => PoisedKind::Fence,
            Poised::Cas { .. } => PoisedKind::Cas,
            Poised::Swap { .. } => PoisedKind::Swap,
            Poised::Return(_) => PoisedKind::Return,
            Poised::Done => PoisedKind::Done,
        }
    }
}

/// Operation shapes (see [`Poised`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PoisedKind {
    /// A read operation.
    Read,
    /// A write operation.
    Write,
    /// A fence operation.
    Fence,
    /// A compare-and-swap operation.
    Cas,
    /// A fetch-and-store operation.
    Swap,
    /// A return operation.
    Return,
    /// Final state.
    Done,
}

/// A deterministic process: a cloneable state machine executing the paper's
/// operations.
///
/// The machine drives a process by inspecting [`poised`](Process::poised)
/// and, once it has performed the operation's memory effects, calling
/// [`advance`](Process::advance) (with the read result for read steps).
/// Commit steps belong to the *system* and never advance the process.
///
/// Implementations must be deterministic — `poised` must be a pure function
/// of the state — because the lower-bound encoder replays and solo-runs
/// processes and relies on identical behaviour each time. `Clone + Eq +
/// Hash` make states snapshotable and model-checkable; `Send + Sync` (free
/// for the plain-data states processes are) lets the model checker explore
/// from multiple threads.
pub trait Process: Clone + Eq + std::hash::Hash + Send + Sync {
    /// The operation this process is poised to execute.
    fn poised(&self) -> Poised;

    /// Consume the poised operation. For reads and compare-and-swaps,
    /// `read_value` carries the value observed (for CAS, the value of the
    /// register *before* the operation — the swap succeeded iff its payload
    /// equals the expectation); for every other operation it is `None`.
    ///
    /// Must not be called when [`poised`](Process::poised) is
    /// [`Poised::Done`]. The machine never calls `advance` for a
    /// [`Poised::Return`] step either — it records the return value itself
    /// and treats the process as final from then on.
    fn advance(&mut self, read_value: Option<Value>);

    /// A program-defined annotation (e.g. "in critical section"), visible to
    /// invariant checkers. Defaults to `0`.
    fn annotation(&self) -> u64 {
        0
    }

    /// Whether this process supports crash-recovery. The machine performs
    /// crash steps only on recoverable processes — a crash element targeting
    /// a non-recoverable process is a no-op, and the choice enumerator never
    /// offers one. Defaults to `false`.
    fn recoverable(&self) -> bool {
        false
    }

    /// Reset the process to its recovery entry point after a crash: local
    /// state is wiped and control restarts at the program's declared
    /// recovery section (the program start, absent a declaration). Only
    /// called when [`recoverable`](Process::recoverable) is `true`. The
    /// default does nothing.
    fn crash_recover(&mut self) {}

    /// A static over-approximation of every shared register this process
    /// may still read or write, from its current state onward (its own
    /// poised operation included). With `include_recovery`, the summary
    /// must also cover everything reachable from the program's crash
    /// recovery entry — callers pass `true` whenever the process can still
    /// crash.
    ///
    /// Partial-order reduction uses this to prove that another process's
    /// pending step can never interfere with this one; the default —
    /// "may touch anything" — is always sound and merely disables that
    /// reduction.
    fn future_access(&self, include_recovery: bool) -> FutureAccess<'_> {
        let _ = include_recovery;
        FutureAccess::all()
    }

    /// The process's current program counter for observability (the
    /// hot-pc table in `ftobs`), if the process has a meaningful one.
    /// The default — `None` — opts out; interpreted processes (the
    /// `fencevm` VM) report their pc so per-label hit counts can be
    /// attributed. Purely diagnostic: never affects semantics, hashing,
    /// or equality.
    fn obs_pc(&self) -> Option<u32> {
        None
    }

    /// Whether performing the poised operation may change the process's
    /// [`annotation`](Process::annotation). Property checks observe
    /// annotations, so partial-order reduction must treat
    /// annotation-changing steps as visible; the conservative default is
    /// `true`.
    fn op_may_annotate(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poised_kind_classification() {
        assert_eq!(Poised::Read(RegId(0)).kind(), PoisedKind::Read);
        assert_eq!(
            Poised::Write(RegId(0), Value::Int(1)).kind(),
            PoisedKind::Write
        );
        assert_eq!(Poised::Fence.kind(), PoisedKind::Fence);
        assert_eq!(Poised::Return(3).kind(), PoisedKind::Return);
        assert_eq!(Poised::Done.kind(), PoisedKind::Done);
    }
}
