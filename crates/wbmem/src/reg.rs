//! Register and process identifiers, and the DSM segment layout.
//!
//! The paper partitions the register set `R` into per-process memory
//! segments `R_0, …, R_{n-1}`. [`MemoryLayout`] records which process (if
//! any) owns each register; registers with no recorded owner belong to a
//! notional extra segment local to nobody, which is a conservative choice
//! (it can only classify more steps as remote, never fewer, so lower-bound
//! measurements remain valid).

use std::collections::HashMap;
use std::fmt;

/// A process identifier in `[0, n)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The identifier as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcId {
    fn from(i: usize) -> Self {
        ProcId(u32::try_from(i).expect("process index fits in u32"))
    }
}

/// A shared-register identifier. Registers are totally ordered by id, which
/// the schedule semantics relies on (a fence commits the write to the
/// *smallest* buffered register).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

impl RegId {
    /// The identifier as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<usize> for RegId {
    fn from(i: usize) -> Self {
        RegId(u32::try_from(i).expect("register index fits in u32"))
    }
}

/// A set of register identifiers, stored as a bitset.
///
/// Used for static access summaries (see
/// [`Process::future_access`](crate::Process::future_access)): the sets are
/// dense over the small id ranges programs actually name, so membership and
/// union are a word operation each.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `reg`; returns whether it was newly inserted.
    pub fn insert(&mut self, reg: RegId) -> bool {
        let (w, b) = (reg.index() / 64, reg.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Whether `reg` is a member.
    #[must_use]
    pub fn contains(&self, reg: RegId) -> bool {
        let (w, b) = (reg.index() / 64, reg.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Add every member of `other`; returns whether the set grew.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut grew = false;
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            grew |= *dst | *src != *dst;
            *dst |= *src;
        }
        grew
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over the members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = RegId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| RegId::from(w * 64 + b))
        })
    }
}

impl FromIterator<RegId> for RegSet {
    fn from_iter<I: IntoIterator<Item = RegId>>(iter: I) -> Self {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

/// The DSM partition: which process's local memory segment each register
/// lives in.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryLayout {
    owners: HashMap<RegId, ProcId>,
}

impl MemoryLayout {
    /// A layout in which no register is local to any process (pure CC-model
    /// accounting: locality can only come from the value cache).
    #[must_use]
    pub fn unowned() -> Self {
        Self::default()
    }

    /// Assign register `reg` to process `owner`'s local segment.
    ///
    /// # Panics
    ///
    /// Panics if `reg` was already assigned to a *different* owner: segment
    /// membership is a partition, not a preference.
    pub fn assign(&mut self, reg: RegId, owner: ProcId) {
        if let Some(prev) = self.owners.insert(reg, owner) {
            assert_eq!(
                prev, owner,
                "register {reg} reassigned from {prev} to {owner}"
            );
        }
    }

    /// The owner of `reg`, if any.
    #[must_use]
    pub fn owner(&self, reg: RegId) -> Option<ProcId> {
        self.owners.get(&reg).copied()
    }

    /// Whether `reg` lies in `p`'s local memory segment.
    #[must_use]
    pub fn is_local_to(&self, reg: RegId, p: ProcId) -> bool {
        self.owner(reg) == Some(p)
    }

    /// Number of registers with an assigned owner.
    #[must_use]
    pub fn assigned_len(&self) -> usize {
        self.owners.len()
    }

    /// Iterate over `(register, owner)` assignments in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (RegId, ProcId)> + '_ {
        self.owners.iter().map(|(&r, &p)| (r, p))
    }
}

impl FromIterator<(RegId, ProcId)> for MemoryLayout {
    fn from_iter<I: IntoIterator<Item = (RegId, ProcId)>>(iter: I) -> Self {
        let mut layout = MemoryLayout::unowned();
        for (r, p) in iter {
            layout.assign(r, p);
        }
        layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unowned_layout_has_no_locals() {
        let layout = MemoryLayout::unowned();
        assert_eq!(layout.owner(RegId(3)), None);
        assert!(!layout.is_local_to(RegId(3), ProcId(0)));
        assert_eq!(layout.assigned_len(), 0);
    }

    #[test]
    fn assignment_and_lookup() {
        let mut layout = MemoryLayout::unowned();
        layout.assign(RegId(7), ProcId(2));
        assert!(layout.is_local_to(RegId(7), ProcId(2)));
        assert!(!layout.is_local_to(RegId(7), ProcId(1)));
        assert_eq!(layout.owner(RegId(7)), Some(ProcId(2)));
    }

    #[test]
    fn reassigning_same_owner_is_idempotent() {
        let mut layout = MemoryLayout::unowned();
        layout.assign(RegId(1), ProcId(0));
        layout.assign(RegId(1), ProcId(0));
        assert_eq!(layout.assigned_len(), 1);
    }

    #[test]
    #[should_panic(expected = "reassigned")]
    fn reassigning_different_owner_panics() {
        let mut layout = MemoryLayout::unowned();
        layout.assign(RegId(1), ProcId(0));
        layout.assign(RegId(1), ProcId(1));
    }

    #[test]
    fn from_iterator_collects() {
        let layout: MemoryLayout = [(RegId(0), ProcId(0)), (RegId(1), ProcId(1))]
            .into_iter()
            .collect();
        assert_eq!(layout.owner(RegId(1)), Some(ProcId(1)));
    }

    #[test]
    fn regset_membership_union_iter() {
        let mut a = RegSet::new();
        assert!(a.is_empty());
        assert!(a.insert(RegId(3)));
        assert!(!a.insert(RegId(3)), "re-insert reports no growth");
        assert!(a.insert(RegId(70)), "spans multiple words");
        assert!(a.contains(RegId(3)) && a.contains(RegId(70)));
        assert!(!a.contains(RegId(4)) && !a.contains(RegId(200)));
        assert_eq!(a.len(), 2);

        let b: RegSet = [RegId(4), RegId(70)].into_iter().collect();
        assert!(a.union_with(&b), "union adds R4");
        assert!(!a.union_with(&b), "second union is a fixpoint");
        let members: Vec<RegId> = a.iter().collect();
        assert_eq!(members, vec![RegId(3), RegId(4), RegId(70)]);
    }

    #[test]
    fn ids_order_and_display() {
        assert!(RegId(1) < RegId(2));
        assert!(ProcId(0) < ProcId(1));
        assert_eq!(RegId(5).to_string(), "R5");
        assert_eq!(ProcId(5).to_string(), "p5");
        assert_eq!(RegId::from(4usize).index(), 4);
        assert_eq!(ProcId::from(4usize).index(), 4);
    }
}
