//! Reorder-edge extraction from replayed counterexamples.
//!
//! A violation found under TSO/PSO but not under SC is enabled by specific
//! *inversions* of program order: a process acted on shared memory while an
//! older write of its own was still sitting in its write buffer, or the
//! system committed a younger buffered write before an older one (PSO
//! only). Each such inversion is a **reorder edge**; a fence placed at the
//! right program point would have forced the buffer to drain first and
//! killed the edge.
//!
//! [`reorder_edges`] replays a schedule (typically a model-checker
//! counterexample) on a clone of the machine and shadow-tracks each
//! process's buffered writes as `(register, issue pc)` pairs, recording an
//! edge whenever the replay performs an inversion. Each edge carries its
//! *candidate set*: the pcs of buffered writes such that inserting a fence
//! immediately after that pc provably breaks this edge (the fence would
//! drain the overtaken write before the overtaking access executes). The
//! fence-synthesis engine (`crates/synth`) unions candidate sets into
//! counterexample cores and solves a hitting-set problem over them.
//!
//! Edge pcs come from [`Process::obs_pc`]; for processes that do not
//! report a pc (the default), edges are still detected but their pcs are
//! `u32::MAX` and useless as insertion sites.

use crate::buffer::WriteBuffer;
use crate::machine::Machine;
use crate::process::{Poised, Process};
use crate::reg::{ProcId, RegId};
use crate::sched::SchedElem;

/// The two inversion shapes a write buffer can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorderKind {
    /// The process performed a globally visible operation (memory read,
    /// return) while an older write of its own was still buffered — the
    /// classic store→load reordering (TSO and PSO).
    OpOvertakesWrite,
    /// The system committed a younger buffered write before an older one —
    /// store→store reordering (PSO only; TSO's FIFO buffer cannot do this).
    CommitInversion,
}

/// One program-order inversion observed during replay.
#[derive(Clone, Debug)]
pub struct ReorderEdge {
    /// The process whose buffered write was overtaken.
    pub proc: ProcId,
    /// pc of the oldest overtaken buffered write.
    pub write_pc: u32,
    /// Register of that write.
    pub write_reg: RegId,
    /// pc of the access that acted first despite being later in program
    /// order (for [`ReorderKind::CommitInversion`], the issue pc of the
    /// younger write whose commit jumped the queue).
    pub overtake_pc: u32,
    /// Which inversion shape this is.
    pub kind: ReorderKind,
    /// Index into the replayed schedule at which the inversion surfaced.
    pub step: usize,
    /// pcs such that a fence inserted immediately after that pc breaks
    /// this edge (always non-empty; includes `write_pc`).
    pub candidates: Vec<u32>,
}

impl std::fmt::Display for ReorderEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            ReorderKind::OpOvertakesWrite => "op-overtakes-write",
            ReorderKind::CommitInversion => "commit-inversion",
        };
        write!(
            f,
            "p{} write@{} {} overtaken-by@{} kind={} step={} candidates={:?}",
            self.proc.0,
            self.write_pc,
            self.write_reg,
            self.overtake_pc,
            kind,
            self.step,
            self.candidates
        )
    }
}

/// A buffered write being shadow-tracked: register, issue pc, issue order.
#[derive(Clone, Copy, Debug)]
struct Pending {
    reg: RegId,
    pc: u32,
}

/// Replay `schedule` on a clone of `machine` and extract every reorder
/// edge. Replay stops early (returning the edges found so far) if the
/// schedule is not executable on the machine — callers replaying checker
/// counterexamples on the machine they were found on will never hit that.
#[must_use]
pub fn reorder_edges<P: Process>(machine: &Machine<P>, schedule: &[SchedElem]) -> Vec<ReorderEdge> {
    let mut m = machine.clone();
    let mut shadow: Vec<Vec<Pending>> = vec![Vec::new(); m.n()];
    let mut edges = Vec::new();
    for (step, &elem) in schedule.iter().enumerate() {
        let p = elem.proc;
        if elem.crash {
            // Both crash semantics leave the buffer empty (discarded or
            // drained); either way nothing is pending afterwards.
            if m.try_step(elem).is_err() {
                break;
            }
            shadow[p.0 as usize].clear();
            continue;
        }
        if let Some(reg) = elem.reg {
            // System commit step.
            if m.try_step(elem).is_err() {
                break;
            }
            commit(&mut shadow[p.0 as usize], p, reg, step, &mut edges);
            continue;
        }
        // Process op step: classify from the poised operation before it runs.
        let poised = m.poised(p);
        let pc = m.process(p).obs_pc().unwrap_or(u32::MAX);
        let buffered = !matches!(m.buffer(p), WriteBuffer::Sc);
        let pso = matches!(m.buffer(p), WriteBuffer::Pso(_));
        match poised {
            Poised::Write(reg, _) if buffered => {
                if m.try_step(elem).is_err() {
                    break;
                }
                let pend = &mut shadow[p.0 as usize];
                if pso {
                    // PSO coalesces: the buffer holds one slot per register.
                    pend.retain(|e| e.reg != reg);
                }
                pend.push(Pending { reg, pc });
            }
            Poised::Read(reg) => {
                let from_buffer = m.buffer(p).regs().contains(&reg);
                if m.try_step(elem).is_err() {
                    break;
                }
                if !from_buffer {
                    overtake(&shadow[p.0 as usize], p, pc, step, &mut edges);
                }
            }
            Poised::Return(_) => {
                if m.try_step(elem).is_err() {
                    break;
                }
                overtake(&shadow[p.0 as usize], p, pc, step, &mut edges);
            }
            Poised::Fence | Poised::Cas { .. } | Poised::Swap { .. } => {
                // With a non-empty buffer these steps commit one buffered
                // write (the machine's drain rule) instead of executing;
                // detect which register left the buffer and treat it as a
                // commit, so PSO's smallest-register drain order can still
                // surface inversions.
                let before: Vec<RegId> = m.buffer(p).regs();
                if m.try_step(elem).is_err() {
                    break;
                }
                let after: Vec<RegId> = m.buffer(p).regs();
                for reg in before.iter().filter(|r| !after.contains(r)) {
                    commit(&mut shadow[p.0 as usize], p, *reg, step, &mut edges);
                }
            }
            _ => {
                if m.try_step(elem).is_err() {
                    break;
                }
            }
        }
    }
    edges
}

/// Record the commit of `reg` by process `p`: if the committed write was
/// not the oldest pending one, that is a store→store inversion.
fn commit(
    pend: &mut Vec<Pending>,
    p: ProcId,
    reg: RegId,
    step: usize,
    edges: &mut Vec<ReorderEdge>,
) {
    let Some(idx) = pend.iter().position(|e| e.reg == reg) else {
        return;
    };
    if idx > 0 {
        let oldest = pend[0];
        let younger = pend[idx];
        // A fence after any write issued before the younger one (the
        // overtaken writes themselves) forces them committed before the
        // younger write is even issued.
        let candidates = pend[..idx].iter().map(|e| e.pc).collect();
        edges.push(ReorderEdge {
            proc: p,
            write_pc: oldest.pc,
            write_reg: oldest.reg,
            overtake_pc: younger.pc,
            kind: ReorderKind::CommitInversion,
            step,
            candidates,
        });
    }
    pend.remove(idx);
}

/// Record a globally visible op by `p` at `pc` while writes are pending.
fn overtake(pend: &[Pending], p: ProcId, pc: u32, step: usize, edges: &mut Vec<ReorderEdge>) {
    let Some(oldest) = pend.first() else {
        return;
    };
    // A fence after any currently pending write's pc drains the whole
    // buffer — including the oldest — before control reaches this op.
    let candidates = pend.iter().map(|e| e.pc).collect();
    edges.push(ReorderEdge {
        proc: p,
        write_pc: oldest.pc,
        write_reg: oldest.reg,
        overtake_pc: pc,
        kind: ReorderKind::OpOvertakesWrite,
        step,
        candidates,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::model::MemoryModel;
    use crate::reg::MemoryLayout;
    use crate::value::Value;

    /// A scripted process: a fixed list of poised operations, advanced in
    /// order, reporting its index as the pc.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Script {
        ops: Vec<Poised>,
        at: usize,
    }

    impl Script {
        fn new(ops: Vec<Poised>) -> Self {
            Script { ops, at: 0 }
        }
    }

    impl Process for Script {
        fn poised(&self) -> Poised {
            self.ops.get(self.at).copied().unwrap_or(Poised::Done)
        }
        fn advance(&mut self, _read: Option<Value>) {
            self.at += 1;
        }
        fn obs_pc(&self) -> Option<u32> {
            Some(self.at as u32)
        }
    }

    fn machine(model: MemoryModel, scripts: Vec<Script>) -> Machine<Script> {
        Machine::new(MachineConfig::new(model, MemoryLayout::unowned()), scripts)
    }

    #[test]
    fn read_overtaking_pending_write_is_an_edge() {
        // write r0; read r1  — the read acts while the write is buffered.
        let m = machine(
            MemoryModel::Tso,
            vec![Script::new(vec![
                Poised::Write(RegId(0), Value::Int(1)),
                Poised::Read(RegId(1)),
                Poised::Return(0),
            ])],
        );
        let p = ProcId(0);
        let sched = [SchedElem::op(p), SchedElem::op(p)];
        let edges = reorder_edges(&m, &sched);
        assert_eq!(edges.len(), 1);
        let e = &edges[0];
        assert_eq!(e.kind, ReorderKind::OpOvertakesWrite);
        assert_eq!(e.write_pc, 0);
        assert_eq!(e.write_reg, RegId(0));
        assert_eq!(e.overtake_pc, 1);
        assert_eq!(e.candidates, vec![0]);
    }

    #[test]
    fn buffered_read_of_own_write_is_not_an_edge() {
        // write r0; read r0 — served from the buffer, program order intact.
        let m = machine(
            MemoryModel::Tso,
            vec![Script::new(vec![
                Poised::Write(RegId(0), Value::Int(1)),
                Poised::Read(RegId(0)),
                Poised::Return(0),
            ])],
        );
        let p = ProcId(0);
        let sched = [SchedElem::op(p), SchedElem::op(p)];
        assert!(reorder_edges(&m, &sched).is_empty());
    }

    #[test]
    fn out_of_order_commit_is_an_edge_under_pso() {
        // write r0; write r1; commit r1 first — PSO store→store inversion.
        let m = machine(
            MemoryModel::Pso,
            vec![Script::new(vec![
                Poised::Write(RegId(0), Value::Int(1)),
                Poised::Write(RegId(1), Value::Int(2)),
                Poised::Return(0),
            ])],
        );
        let p = ProcId(0);
        let sched = [
            SchedElem::op(p),
            SchedElem::op(p),
            SchedElem::commit(p, RegId(1)),
        ];
        let edges = reorder_edges(&m, &sched);
        assert_eq!(edges.len(), 1);
        let e = &edges[0];
        assert_eq!(e.kind, ReorderKind::CommitInversion);
        assert_eq!(e.write_pc, 0);
        assert_eq!(e.overtake_pc, 1);
        assert_eq!(e.candidates, vec![0]);
    }

    #[test]
    fn in_order_commits_are_silent() {
        let m = machine(
            MemoryModel::Pso,
            vec![Script::new(vec![
                Poised::Write(RegId(0), Value::Int(1)),
                Poised::Write(RegId(1), Value::Int(2)),
                Poised::Return(0),
            ])],
        );
        let p = ProcId(0);
        let sched = [
            SchedElem::op(p),
            SchedElem::op(p),
            SchedElem::commit(p, RegId(0)),
            SchedElem::commit(p, RegId(1)),
        ];
        assert!(reorder_edges(&m, &sched).is_empty());
    }

    #[test]
    fn sc_machine_yields_no_edges() {
        let m = machine(
            MemoryModel::Sc,
            vec![Script::new(vec![
                Poised::Write(RegId(0), Value::Int(1)),
                Poised::Read(RegId(1)),
                Poised::Return(0),
            ])],
        );
        let p = ProcId(0);
        let sched = [SchedElem::op(p), SchedElem::op(p), SchedElem::op(p)];
        assert!(reorder_edges(&m, &sched).is_empty());
    }

    #[test]
    fn return_with_pending_write_is_an_edge() {
        let m = machine(
            MemoryModel::Tso,
            vec![Script::new(vec![
                Poised::Write(RegId(0), Value::Int(1)),
                Poised::Return(0),
            ])],
        );
        let p = ProcId(0);
        let sched = [SchedElem::op(p), SchedElem::op(p)];
        let edges = reorder_edges(&m, &sched);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].kind, ReorderKind::OpOvertakesWrite);
        assert_eq!(edges[0].overtake_pc, 1);
    }
}
