//! Hybrid DSM + CC locality tracking.
//!
//! The paper's lower bound is proved in a model **combining** the Distributed
//! Shared Memory and Cache-Coherent models, so that every step it classifies
//! as remote is an RMR in *both*. Concretely (Section 2):
//!
//! * A `read(R)` step by `p` is **local** iff `R ∈ R_p` (DSM locality), *or*
//!   the read returns a value `x` such that `p` previously executed
//!   `write(R, x)` or previously read `x` from `R` (cache validity).
//! * `write` and `fence` steps are always local.
//! * A commit of `(R, x)` by `p` is **local** iff `R ∈ R_p`, *or* `p` was
//!   the last process to commit a write to `R` (exclusive/dirty ownership).
//!
//! [`LocalityTracker`] maintains the value caches and last-committer map and
//! answers these questions; the [`Machine`](crate::Machine) consults it on
//! every read and commit.

use std::collections::{HashMap, HashSet};

use crate::reg::{MemoryLayout, ProcId, RegId};
use crate::value::Value;

/// Tracks per-process value caches and per-register commit ownership.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalityTracker {
    /// `(R, x)` pairs each process has written or observed: the CC cache.
    caches: Vec<HashSet<(RegId, Value)>>,
    /// The last process to commit to each register.
    last_committer: HashMap<RegId, ProcId>,
}

impl LocalityTracker {
    /// A tracker for `n` processes with empty caches.
    #[must_use]
    pub fn new(n: usize) -> Self {
        LocalityTracker {
            caches: vec![HashSet::new(); n],
            last_committer: HashMap::new(),
        }
    }

    /// Whether a read of `reg` by `p` returning `value` is local.
    #[must_use]
    pub fn read_is_local(
        &self,
        layout: &MemoryLayout,
        p: ProcId,
        reg: RegId,
        value: Value,
    ) -> bool {
        layout.is_local_to(reg, p) || self.caches[p.index()].contains(&(reg, value))
    }

    /// Record that `p` observed (read or wrote) `value` at `reg`. Returns
    /// whether the cache entry is new (so an undo-log knows whether to
    /// remove it again).
    pub fn observe(&mut self, p: ProcId, reg: RegId, value: Value) -> bool {
        self.caches[p.index()].insert((reg, value))
    }

    /// Remove a cache entry previously added by [`observe`](Self::observe).
    /// Only correct for entries whose `observe` returned `true` (an undo
    /// must not evict an entry that predated the step being reversed).
    pub fn unobserve(&mut self, p: ProcId, reg: RegId, value: Value) {
        self.caches[p.index()].remove(&(reg, value));
    }

    /// Whether a commit to `reg` by `p` is local, i.e. `reg` is in `p`'s
    /// segment or `p` also performed the previous commit to `reg`.
    #[must_use]
    pub fn commit_is_local(&self, layout: &MemoryLayout, p: ProcId, reg: RegId) -> bool {
        layout.is_local_to(reg, p) || self.last_committer.get(&reg) == Some(&p)
    }

    /// Record that `p` committed to `reg`. Returns the previous committer
    /// (so an undo-log can restore ownership).
    pub fn record_commit(&mut self, p: ProcId, reg: RegId) -> Option<ProcId> {
        self.last_committer.insert(reg, p)
    }

    /// Restore `reg`'s commit ownership to `owner` (`None` clears it).
    /// The inverse of [`record_commit`](Self::record_commit).
    pub fn set_last_committer(&mut self, reg: RegId, owner: Option<ProcId>) {
        match owner {
            Some(p) => {
                self.last_committer.insert(reg, p);
            }
            None => {
                self.last_committer.remove(&reg);
            }
        }
    }

    /// The last committer to `reg`, if any commit has happened.
    #[must_use]
    pub fn last_committer(&self, reg: RegId) -> Option<ProcId> {
        self.last_committer.get(&reg).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_r0_owned_by_p0() -> MemoryLayout {
        let mut l = MemoryLayout::unowned();
        l.assign(RegId(0), ProcId(0));
        l
    }

    #[test]
    fn segment_reads_are_local() {
        let t = LocalityTracker::new(2);
        let l = layout_r0_owned_by_p0();
        assert!(t.read_is_local(&l, ProcId(0), RegId(0), Value::Bot));
        assert!(!t.read_is_local(&l, ProcId(1), RegId(0), Value::Bot));
    }

    #[test]
    fn cached_value_reads_are_local() {
        let mut t = LocalityTracker::new(2);
        let l = MemoryLayout::unowned();
        let (r, v) = (RegId(5), Value::Int(7));
        assert!(
            !t.read_is_local(&l, ProcId(1), r, v),
            "first read is remote"
        );
        t.observe(ProcId(1), r, v);
        assert!(
            t.read_is_local(&l, ProcId(1), r, v),
            "re-reading same value is a cache hit"
        );
        assert!(
            !t.read_is_local(&l, ProcId(1), r, Value::Int(8)),
            "a different value at the same register misses"
        );
    }

    #[test]
    fn commit_ownership_transfers() {
        let mut t = LocalityTracker::new(3);
        let l = MemoryLayout::unowned();
        let r = RegId(2);
        assert!(
            !t.commit_is_local(&l, ProcId(0), r),
            "very first commit is remote"
        );
        t.record_commit(ProcId(0), r);
        assert!(
            t.commit_is_local(&l, ProcId(0), r),
            "repeat commit by owner is local"
        );
        assert!(!t.commit_is_local(&l, ProcId(1), r));
        t.record_commit(ProcId(1), r);
        assert!(
            !t.commit_is_local(&l, ProcId(0), r),
            "ownership moved to p1"
        );
        assert_eq!(t.last_committer(r), Some(ProcId(1)));
    }

    #[test]
    fn segment_commits_always_local() {
        let mut t = LocalityTracker::new(2);
        let l = layout_r0_owned_by_p0();
        assert!(t.commit_is_local(&l, ProcId(0), RegId(0)));
        t.record_commit(ProcId(1), RegId(0));
        assert!(
            t.commit_is_local(&l, ProcId(0), RegId(0)),
            "segment locality is unconditional"
        );
    }
}
