//! Schedules.
//!
//! A schedule is a sequence of pairs `(p, R?)` (the paper's
//! `[n] × (R ∪ {⊥})`). Each element, applied to a configuration, yields at
//! most one step — see [`Machine::step`](crate::Machine::step) for the
//! three-case rule.

use rand::Rng;

use crate::reg::{ProcId, RegId};

/// One schedule element: a process and an optional register naming a commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SchedElem {
    /// The process selected to take a step.
    pub proc: ProcId,
    /// `Some(R)`: commit `p`'s buffered write to `R` if one is committable;
    /// `None` (the paper's ⊥): let `p` execute its poised operation.
    pub reg: Option<RegId>,
    /// `true`: crash `p` instead (a fault-injection step — see
    /// [`Machine::step`](crate::Machine::step)). A crash element is a no-op
    /// unless the machine has a crash budget left for `p` and `p`'s program
    /// is recoverable.
    pub crash: bool,
}

impl SchedElem {
    /// An element selecting `p`'s poised operation (`(p, ⊥)`).
    #[must_use]
    pub fn op(proc: ProcId) -> Self {
        SchedElem {
            proc,
            reg: None,
            crash: false,
        }
    }

    /// An element committing `p`'s buffered write to `reg`.
    #[must_use]
    pub fn commit(proc: ProcId, reg: RegId) -> Self {
        SchedElem {
            proc,
            reg: Some(reg),
            crash: false,
        }
    }

    /// An element crashing `p` (fault injection).
    #[must_use]
    pub fn crash(proc: ProcId) -> Self {
        SchedElem {
            proc,
            reg: None,
            crash: true,
        }
    }
}

/// A finite schedule.
pub type Schedule = Vec<SchedElem>;

/// A `p`-only schedule of `len` operation elements (`(p, ⊥)` repeated).
/// Under the machine semantics this suffices for solo progress: a
/// fence-blocked process commits one buffered write per element.
#[must_use]
pub fn solo(p: ProcId, len: usize) -> Schedule {
    vec![SchedElem::op(p); len]
}

/// A round-robin schedule over `n` processes, `rounds` rounds of operation
/// elements.
#[must_use]
pub fn round_robin(n: usize, rounds: usize) -> Schedule {
    let mut s = Schedule::with_capacity(n * rounds);
    for _ in 0..rounds {
        for p in 0..n {
            s.push(SchedElem::op(ProcId::from(p)));
        }
    }
    s
}

/// A uniformly random sequence of `(p, ⊥)` elements over `n` processes.
/// (Commit nondeterminism is better explored via
/// [`Machine::choices`](crate::Machine::choices); this helper only
/// randomizes process interleaving.)
pub fn random_ops<R: Rng>(rng: &mut R, n: usize, len: usize) -> Schedule {
    (0..len)
        .map(|_| SchedElem::op(ProcId::from(rng.gen_range(0..n))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constructors() {
        assert_eq!(
            SchedElem::op(ProcId(1)),
            SchedElem {
                proc: ProcId(1),
                reg: None,
                crash: false
            }
        );
        assert_eq!(
            SchedElem::commit(ProcId(1), RegId(2)),
            SchedElem {
                proc: ProcId(1),
                reg: Some(RegId(2)),
                crash: false
            }
        );
        assert_eq!(
            SchedElem::crash(ProcId(1)),
            SchedElem {
                proc: ProcId(1),
                reg: None,
                crash: true
            }
        );
    }

    #[test]
    fn solo_schedule_shape() {
        let s = solo(ProcId(3), 4);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|e| e.proc == ProcId(3) && e.reg.is_none()));
    }

    #[test]
    fn round_robin_cycles() {
        let s = round_robin(3, 2);
        let procs: Vec<u32> = s.iter().map(|e| e.proc.0).collect();
        assert_eq!(procs, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_ops_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        let s = random_ops(&mut rng, 4, 100);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|e| e.proc.0 < 4 && e.reg.is_none()));
    }
}
