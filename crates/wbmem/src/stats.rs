//! Trace analytics: who touched which registers, whose memory segments
//! were accessed, and where the RMRs went.
//!
//! These are the quantities the paper's construction reasons about — e.g.
//! rule (E1)'s λ is exactly a row of the [`segment_access_matrix`] — made
//! available as plain functions over a recorded [`Trace`].

use std::collections::{BTreeMap, HashMap};

use crate::event::{EventKind, Trace};
use crate::reg::{MemoryLayout, ProcId, RegId};

/// Per-register access counts across a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegisterStats {
    /// Read steps of the register (memory- or buffer-served).
    pub reads: u64,
    /// Reads served from shared memory.
    pub memory_reads: u64,
    /// Write steps targeting the register.
    pub writes: u64,
    /// Commits landing on the register.
    pub commits: u64,
    /// CAS steps on the register.
    pub cas_ops: u64,
    /// Swap steps on the register.
    pub swap_ops: u64,
    /// Remote steps (RMRs) charged on the register.
    pub rmrs: u64,
}

/// Access counts for every register mentioned in the trace, keyed and
/// ordered by register id.
#[must_use]
pub fn register_histogram(trace: &Trace) -> BTreeMap<RegId, RegisterStats> {
    let mut hist: BTreeMap<RegId, RegisterStats> = BTreeMap::new();
    for event in trace.events() {
        let (reg, is_remote) = match &event.kind {
            EventKind::Read {
                reg,
                from_memory,
                remote,
                ..
            } => {
                let s = hist.entry(*reg).or_default();
                s.reads += 1;
                if *from_memory {
                    s.memory_reads += 1;
                }
                (*reg, *remote)
            }
            EventKind::Write { reg, .. } => {
                hist.entry(*reg).or_default().writes += 1;
                (*reg, false)
            }
            EventKind::Commit { reg, remote, .. } => {
                hist.entry(*reg).or_default().commits += 1;
                (*reg, *remote)
            }
            EventKind::Cas { reg, remote, .. } => {
                hist.entry(*reg).or_default().cas_ops += 1;
                (*reg, *remote)
            }
            EventKind::Swap { reg, remote, .. } => {
                hist.entry(*reg).or_default().swap_ops += 1;
                (*reg, *remote)
            }
            EventKind::Fence | EventKind::Return { .. } | EventKind::Crash { .. } => continue,
        };
        if is_remote {
            hist.entry(reg).or_default().rmrs += 1;
        }
    }
    hist
}

/// The segment-access matrix: `matrix[a][o]` counts the *accesses* (in the
/// paper's §2 sense: memory-served reads, commits, and CAS steps) process
/// `a` performed on registers in process `o`'s memory segment.
///
/// Rule (E1)'s λ for process `p` is the number of **distinct** non-`p`
/// processes with a non-zero entry in column `p` — see
/// [`segment_accessors`].
#[must_use]
pub fn segment_access_matrix(trace: &Trace, layout: &MemoryLayout, n: usize) -> Vec<Vec<u64>> {
    let mut matrix = vec![vec![0u64; n]; n];
    for event in trace.events() {
        let reg = match &event.kind {
            EventKind::Read {
                reg,
                from_memory: true,
                ..
            }
            | EventKind::Commit { reg, .. }
            | EventKind::Cas { reg, .. }
            | EventKind::Swap { reg, .. } => *reg,
            _ => continue,
        };
        if let Some(owner) = layout.owner(reg) {
            if event.proc.index() < n && owner.index() < n {
                matrix[event.proc.index()][owner.index()] += 1;
            }
        }
    }
    matrix
}

/// The distinct processes other than `p` that access `p`'s memory segment
/// in the trace — rule (E1)'s accessor set.
#[must_use]
pub fn segment_accessors(trace: &Trace, layout: &MemoryLayout, p: ProcId) -> Vec<ProcId> {
    let mut seen: Vec<ProcId> = trace
        .events()
        .iter()
        .filter(|e| e.proc != p && e.kind.accesses_segment_of(|r| layout.owner(r) == Some(p)))
        .map(|e| e.proc)
        .collect();
    seen.sort_unstable();
    seen.dedup();
    seen
}

/// Remote steps charged to each process in the trace (a trace-derived view
/// of the counters' per-process `rmrs`).
#[must_use]
pub fn rmrs_by_process(trace: &Trace) -> HashMap<ProcId, u64> {
    let mut out: HashMap<ProcId, u64> = HashMap::new();
    for event in trace.events() {
        if event.kind.is_remote() {
            *out.entry(event.proc).or_default() += 1;
        }
    }
    out
}

/// Fence steps per process in the trace.
#[must_use]
pub fn fences_by_process(trace: &Trace) -> HashMap<ProcId, u64> {
    let mut out: HashMap<ProcId, u64> = HashMap::new();
    for event in trace.events() {
        if matches!(event.kind, EventKind::Fence) {
            *out.entry(event.proc).or_default() += 1;
        }
    }
    out
}

/// Render the segment-access matrix as an aligned table (rows = accessor,
/// columns = segment owner).
#[must_use]
pub fn render_matrix(matrix: &[Vec<u64>]) -> String {
    use std::fmt::Write as _;
    let n = matrix.len();
    let mut out = String::new();
    let _ = write!(out, "{:>6}", "");
    for o in 0..n {
        let _ = write!(out, "{:>6}", format!("R_p{o}"));
    }
    let _ = writeln!(out);
    for (a, row) in matrix.iter().enumerate() {
        let _ = write!(out, "{:>6}", format!("p{a}"));
        for &c in row {
            let _ = write!(out, "{c:>6}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::value::Value;

    fn read(p: u32, r: u32, mem: bool, remote: bool) -> Event {
        Event {
            proc: ProcId(p),
            kind: EventKind::Read {
                reg: RegId(r),
                value: Value::Bot,
                from_memory: mem,
                remote,
            },
        }
    }

    fn commit(p: u32, r: u32, remote: bool) -> Event {
        Event {
            proc: ProcId(p),
            kind: EventKind::Commit {
                reg: RegId(r),
                value: Value::Int(1),
                remote,
            },
        }
    }

    fn sample_trace() -> Trace {
        [
            read(0, 5, true, true),
            read(0, 5, true, false),
            read(1, 5, false, false),
            commit(1, 5, true),
            commit(1, 7, false),
            Event {
                proc: ProcId(0),
                kind: EventKind::Fence,
            },
            Event {
                proc: ProcId(0),
                kind: EventKind::Write {
                    reg: RegId(7),
                    value: Value::Int(3),
                },
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn histogram_counts_by_kind() {
        let hist = register_histogram(&sample_trace());
        let r5 = hist[&RegId(5)];
        assert_eq!(r5.reads, 3);
        assert_eq!(r5.memory_reads, 2);
        assert_eq!(r5.commits, 1);
        assert_eq!(r5.rmrs, 2, "one remote read + one remote commit");
        let r7 = hist[&RegId(7)];
        assert_eq!(r7.writes, 1);
        assert_eq!(r7.commits, 1);
        assert_eq!(r7.rmrs, 0);
    }

    #[test]
    fn matrix_counts_segment_accesses() {
        let mut layout = MemoryLayout::unowned();
        layout.assign(RegId(5), ProcId(1)); // reg 5 lives in p1's segment
        let m = segment_access_matrix(&sample_trace(), &layout, 2);
        assert_eq!(m[0][1], 2, "p0 memory-read reg 5 twice");
        assert_eq!(
            m[1][1], 1,
            "p1's commit to its own segment still counts as access"
        );
        assert_eq!(m[0][0], 0);
        assert!(render_matrix(&m).contains("R_p1"));
    }

    #[test]
    fn accessors_excludes_buffer_reads_and_self() {
        let mut layout = MemoryLayout::unowned();
        layout.assign(RegId(5), ProcId(1));
        // p1's buffer read of its own reg doesn't count; p0's memory reads do.
        assert_eq!(
            segment_accessors(&sample_trace(), &layout, ProcId(1)),
            vec![ProcId(0)]
        );
        // p1 commits to reg 7, but nobody owns reg 7.
        assert_eq!(
            segment_accessors(&sample_trace(), &layout, ProcId(0)),
            Vec::<ProcId>::new()
        );
    }

    #[test]
    fn per_process_tallies() {
        let t = sample_trace();
        let rmrs = rmrs_by_process(&t);
        assert_eq!(rmrs.get(&ProcId(0)), Some(&1));
        assert_eq!(rmrs.get(&ProcId(1)), Some(&1));
        let fences = fences_by_process(&t);
        assert_eq!(fences.get(&ProcId(0)), Some(&1));
        assert_eq!(fences.get(&ProcId(1)), None);
    }
}
