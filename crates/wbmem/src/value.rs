//! Register values.
//!
//! The paper's domain is `D ⊇ {⊥}`, with every register initially ⊥. The
//! lower-bound proof additionally assumes (w.l.o.g.) that **all written
//! values are distinct**; to honour that without contorting the algorithms,
//! values come in two written flavours: a plain integer, and a *tagged*
//! integer that pairs the algorithm-visible payload with a globally unique
//! nonce assigned by the machine at write time (see
//! [`MachineConfig::tag_writes`](crate::MachineConfig)).
//!
//! Algorithms observe only the [`payload`](Value::payload); equality of the
//! full `Value` (payload *and* nonce) is what the cache-locality rule of the
//! RMR accounting uses, exactly as in the paper where distinct writes are
//! distinct domain elements.

use std::fmt;

/// A shared-register value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Value {
    /// The initial value ⊥ held by every register before any commit.
    #[default]
    Bot,
    /// A plain written integer.
    Int(u64),
    /// A written integer made globally unique by a machine-assigned nonce.
    Tagged {
        /// The algorithm-visible integer.
        payload: u64,
        /// A machine-assigned unique identifier for this write.
        nonce: u64,
    },
}

impl Value {
    /// The algorithm-visible integer carried by this value.
    ///
    /// ⊥ reads as `0`, which lets algorithms written against 0-initialized
    /// registers (Bakery's `C`/`T` arrays, Peterson's flags, …) run
    /// unchanged on ⊥-initialized memory.
    #[must_use]
    pub fn payload(self) -> u64 {
        match self {
            Value::Bot => 0,
            Value::Int(x) => x,
            Value::Tagged { payload, .. } => payload,
        }
    }

    /// Whether this is the initial value ⊥.
    #[must_use]
    pub fn is_bot(self) -> bool {
        matches!(self, Value::Bot)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::Int(x)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bot => write!(f, "⊥"),
            Value::Int(x) => write!(f, "{x}"),
            Value::Tagged { payload, nonce } => write!(f, "{payload}#{nonce}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bot_payload_is_zero() {
        assert_eq!(Value::Bot.payload(), 0);
        assert!(Value::Bot.is_bot());
        assert!(!Value::Int(0).is_bot());
    }

    #[test]
    fn tagged_values_with_equal_payload_are_distinct() {
        let a = Value::Tagged {
            payload: 1,
            nonce: 10,
        };
        let b = Value::Tagged {
            payload: 1,
            nonce: 11,
        };
        assert_ne!(a, b);
        assert_eq!(a.payload(), b.payload());
    }

    #[test]
    fn bot_differs_from_int_zero_as_a_value() {
        // payload-equal but value-distinct: the cache rule distinguishes them.
        assert_ne!(Value::Bot, Value::Int(0));
        assert_eq!(Value::Bot.payload(), Value::Int(0).payload());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bot.to_string(), "⊥");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(
            Value::Tagged {
                payload: 3,
                nonce: 9
            }
            .to_string(),
            "3#9"
        );
    }

    #[test]
    fn from_u64() {
        assert_eq!(Value::from(5), Value::Int(5));
    }

    #[test]
    fn default_is_bot() {
        assert_eq!(Value::default(), Value::Bot);
    }
}
