//! Property-based tests for the write-buffer machine semantics.

use proptest::prelude::*;
use wbmem::{
    Machine, MachineConfig, MemoryLayout, MemoryModel, Poised, ProcId, Process, RegId, SchedElem,
    Value, WriteBuffer,
};

// ---------- buffer-level properties ----------

fn arb_ops() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..8, 0u8..16), 0..40)
}

proptest! {
    /// PSO: reading a register from the buffer always yields the most
    /// recent pending write to it, and the buffer holds at most one entry
    /// per register.
    #[test]
    fn pso_buffer_read_is_last_write(ops in arb_ops()) {
        let mut buf = WriteBuffer::new(MemoryModel::Pso);
        let mut latest = std::collections::HashMap::new();
        for (r, v) in ops {
            let (reg, val) = (RegId(u32::from(r)), Value::Int(u64::from(v)));
            buf.push(reg, val);
            latest.insert(reg, val);
            prop_assert_eq!(buf.read(reg), Some(val));
        }
        prop_assert_eq!(buf.len(), latest.len());
        for (reg, val) in latest {
            prop_assert_eq!(buf.read(reg), Some(val));
            prop_assert!(buf.can_commit(reg));
        }
    }

    /// TSO: commits drain in exactly push order, regardless of registers.
    #[test]
    fn tso_buffer_commits_fifo(ops in arb_ops()) {
        let mut buf = WriteBuffer::new(MemoryModel::Tso);
        for &(r, v) in &ops {
            buf.push(RegId(u32::from(r)), Value::Int(u64::from(v)));
        }
        let mut drained = Vec::new();
        while let Some(reg) = buf.fence_commit_target() {
            let val = buf.take(reg).expect("head is committable");
            drained.push((reg, val));
        }
        let expect: Vec<(RegId, Value)> = ops
            .iter()
            .map(|&(r, v)| (RegId(u32::from(r)), Value::Int(u64::from(v))))
            .collect();
        prop_assert_eq!(drained, expect);
    }

    /// PSO: a fence-blocked process always commits the smallest buffered
    /// register first.
    #[test]
    fn pso_fence_target_is_minimum(ops in arb_ops()) {
        let mut buf = WriteBuffer::new(MemoryModel::Pso);
        for &(r, v) in &ops {
            buf.push(RegId(u32::from(r)), Value::Int(u64::from(v)));
        }
        if let Some(target) = buf.fence_commit_target() {
            let min = buf.regs().into_iter().min().unwrap();
            prop_assert_eq!(target, min);
        } else {
            prop_assert!(buf.is_empty());
        }
    }
}

// ---------- machine-level properties ----------

/// A scripted process usable as a proptest value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Script {
    ops: Vec<Poised>,
    pc: usize,
}

impl Process for Script {
    fn poised(&self) -> Poised {
        self.ops.get(self.pc).copied().unwrap_or(Poised::Done)
    }
    fn advance(&mut self, _v: Option<Value>) {
        self.pc += 1;
    }
}

fn arb_script(max_len: usize) -> impl Strategy<Value = Script> {
    let op = prop_oneof![
        (0u32..6).prop_map(|r| Poised::Read(RegId(r))),
        (0u32..6, 0u64..8).prop_map(|(r, v)| Poised::Write(RegId(r), Value::Int(v))),
        Just(Poised::Fence),
    ];
    prop::collection::vec(op, 0..max_len).prop_map(|mut ops| {
        ops.push(Poised::Return(0));
        Script { ops, pc: 0 }
    })
}

fn arb_layout() -> impl Strategy<Value = MemoryLayout> {
    prop::collection::vec(prop::option::of(0u32..3), 6).prop_map(|owners| {
        owners
            .into_iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|p| (RegId(i as u32), ProcId(p))))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any schedule and model: RMR totals decompose into remote reads
    /// plus remote commits, buffers are empty after completion (every
    /// program ends fence-free... via run_solo draining), and solo runs are
    /// deterministic (two identical machines agree on everything).
    #[test]
    fn solo_runs_are_deterministic_and_account_consistently(
        scripts in prop::collection::vec(arb_script(12), 1..4),
        layout in arb_layout(),
        model in prop::sample::select(vec![MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso]),
    ) {
        let config = MachineConfig::new(model, layout);
        let mk = || Machine::new(config.clone(), scripts.clone());
        let mut a = mk();
        let mut b = mk();
        for i in 0..scripts.len() {
            a.run_solo(ProcId::from(i), 10_000);
            b.run_solo(ProcId::from(i), 10_000);
        }
        prop_assert!(a.all_done());
        prop_assert_eq!(a.state_key(), b.state_key());
        for i in 0..scripts.len() {
            let c = a.counters().proc(i);
            prop_assert_eq!(c.rmrs, c.remote_reads + c.remote_commits);
            prop_assert!(c.remote_reads <= c.reads);
            prop_assert!(c.remote_commits <= c.commits);
        }
    }

    /// Commits never invent values: after any random schedule, every
    /// register's content is ⊥ or some value that was written by someone.
    #[test]
    fn memory_holds_only_written_values(
        scripts in prop::collection::vec(arb_script(10), 1..4),
        choices in prop::collection::vec((0usize..4, prop::option::of(0u32..6)), 0..200),
        model in prop::sample::select(vec![MemoryModel::Tso, MemoryModel::Pso]),
    ) {
        let config = MachineConfig::new(model, MemoryLayout::unowned()).with_tagged_writes();
        let mut m = Machine::new(config, scripts.clone());
        for (p, r) in choices {
            if p < scripts.len() {
                m.step(SchedElem { proc: ProcId::from(p), reg: r.map(RegId), crash: false });
            }
        }
        for r in 0..6u32 {
            let v = m.memory(RegId(r));
            // Tagged values carry unique nonces assigned at write steps, so
            // any non-⊥ value must be Tagged.
            let valid = v.is_bot() || matches!(v, Value::Tagged { .. });
            prop_assert!(valid);
        }
    }

    /// The enabled-choices enumeration is sound and complete: every choice
    /// steps, and a no-choice machine is all-done.
    #[test]
    fn choices_are_exactly_the_enabled_elements(
        scripts in prop::collection::vec(arb_script(8), 1..3),
        picks in prop::collection::vec(0usize..8, 0..60),
    ) {
        let config = MachineConfig::new(MemoryModel::Pso, MemoryLayout::unowned());
        let mut m = Machine::new(config, scripts);
        for pick in picks {
            let choices = m.choices();
            if choices.is_empty() {
                prop_assert!(m.all_done());
                break;
            }
            let elem = choices[pick % choices.len()];
            let out = m.step(elem);
            let stepped = matches!(out, wbmem::StepOutcome::Stepped(_));
            prop_assert!(stepped, "enabled choice {:?} did not step", elem);
        }
    }
}
