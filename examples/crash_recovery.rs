//! Crash-fault injection and recoverable mutual exclusion: the model
//! checker explores crash schedules (a crash wipes a process's locals,
//! discards its buffered writes, and restarts it at its recovery entry).
//! The naive TTAS wedges — a crash strands the lock word — while the
//! recoverable variant repairs it on restart. A wall-clock budget turns an
//! undecided run into an explicit `inconclusive` verdict with coverage.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use std::time::Duration;

use fence_trade::prelude::*;

fn main() {
    let cfg = CheckConfig {
        check_termination: true,
        ..CheckConfig::default()
    }
    .with_crashes(CrashSemantics::DiscardBuffer, 2);

    println!("== Naive vs recoverable TTAS under up to two crashes (PSO) ==\n");
    for kind in [LockKind::Ttas, LockKind::RecoverableTtas] {
        let inst = build_mutex(kind, 2, FenceMask::ALL);
        let verdict = check(&inst.machine(MemoryModel::Pso), &cfg);
        println!(
            "{}: {} ({} states)",
            inst.name,
            verdict.label(),
            verdict.stats().states
        );
        if let Verdict::NoTermination(_, cex) = &verdict {
            println!("\nA schedule nobody recovers from:\n{cex}");
        }
    }
    println!(
        "The crash erases the holder's locals (and, under the discard\n\
         semantics, its buffered release write), but the lock word survives\n\
         in shared memory: the naive lock spins on its own stale claim. The\n\
         recoverable variant's recovery section CASes the word back first.\n"
    );

    println!("== A wall-clock budget makes giving up explicit ==\n");
    let inst = build_mutex(LockKind::Bakery, 3, FenceMask::ALL);
    let budgeted = CheckConfig {
        check_termination: false,
        ..CheckConfig::default()
    }
    .with_budget(Duration::ZERO);
    let verdict = check(&inst.machine(MemoryModel::Pso), &budgeted);
    let coverage = verdict.coverage().expect("zero budget cannot finish");
    println!(
        "bakery[3]/PSO with a zero budget: `{}` — {} states explored, {} \
         frontier states unvisited.",
        verdict.label(),
        verdict.stats().states,
        coverage.frontier
    );
}
