//! Run the Section-5 lower-bound machinery end to end on one permutation:
//! construct `E_π`, print the command stacks, serialize them to bits,
//! deserialize, re-decode, and recover π from the return values.
//!
//! ```text
//! cargo run --release --example encode_permutation [n] [seed]
//! ```

use fence_trade::lowerbound::{self, log2_factorial};
use fence_trade::prelude::*;
use rand_shuffle::shuffled;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    if n == 0 || n > 32 {
        eprintln!("usage: encode_permutation [n (1..=32)] [seed]  — got n = {n}");
        std::process::exit(2);
    }

    let pi = shuffled(n, seed);
    println!("n = {n}, seed = {seed}, pi = {pi:?}\n");

    let inst = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
    let enc = encode_permutation(&inst, &pi, &EncodeOptions::default())
        .expect("the Bakery counter is an ordering algorithm");

    println!("command stacks (top -> bottom):");
    print!("{}", enc.stacks.render());

    let bits = lowerbound::serialize_stacks(&enc.stacks);
    println!(
        "\ncommands m = {}   value sum v = {}",
        enc.commands, enc.value_sum
    );
    println!("beta (fences) = {}   rho (RMRs) = {}", enc.beta, enc.rho);
    println!(
        "code length = {} bits   (beta*(log(rho/beta)+1) = {:.0}, log2(n!) = {:.0})",
        bits.len(),
        theorem_lhs(enc.beta, enc.rho),
        log2_factorial(n)
    );

    // The round trip: bits -> stacks -> execution -> return values -> pi.
    let back = lowerbound::deserialize_stacks(&bits, n).expect("codec round-trips");
    let out = decode(&proof_machine(&inst), &back, &DecodeOptions::default())
        .expect("decoding the code replays E_pi");
    let recovered = recover_permutation(&out.machine);
    println!("\nrecovered permutation from return values: {recovered:?}");
    assert_eq!(recovered, pi, "the code uniquely determines pi");
    println!(
        "round trip OK: the stacks are a real {}-bit code for pi",
        bits.len()
    );
}

/// A tiny xorshift-based Fisher-Yates, so the example needs no rand dep.
mod rand_shuffle {
    pub fn shuffled(n: usize, seed: u64) -> Vec<usize> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        v
    }
}
