//! The lock family on real atomics: several threads share a `Count`
//! ordering object; we verify the ranks form a permutation and report
//! throughput and fence counts per lock.
//!
//! ```text
//! cargo run --release --example hardware_counter [threads] [iters]
//! ```

use std::time::Instant;

use fence_trade::prelude::*;

fn drive<L: RawLock>(lock: L, threads: usize, iters: usize) {
    let name = lock.name();
    let counter = CountingLock::new(lock);
    let start = Instant::now();
    let mut ranks: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let counter = &counter;
                scope.spawn(move || (0..iters).map(|_| counter.next(tid)).collect::<Vec<u64>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = start.elapsed();

    ranks.sort_unstable();
    let total = threads * iters;
    assert_eq!(
        ranks,
        (0..total as u64).collect::<Vec<u64>>(),
        "{name}: ranks not a permutation"
    );

    let ops_per_sec = total as f64 / elapsed.as_secs_f64();
    println!(
        "{name:<22} {threads} threads x {iters} iters: {elapsed:>10.2?}  \
         {ops_per_sec:>12.0} ops/s  {} fences ({:.1}/op)",
        counter.lock().fences(),
        counter.lock().fences() as f64 / total as f64,
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let n = threads.next_power_of_two().max(2);

    println!("hardware Count object, {threads} threads, {iters} iterations each\n");
    drive(HwBakery::new(n), threads, iters);
    drive(HwGt::new(n, 2), threads, iters);
    drive(HwTournament::new(n), threads, iters);
    drive(HwTtas::new(), threads, iters);
    drive(HwMcs::new(n), threads, iters);
    if threads <= 2 {
        drive(HwPeterson::new(), threads, iters);
    }
    println!("\nEvery rank sequence is a permutation: the ordering property holds");
    println!("on real hardware, with fences per op matching the simulator's beta.");
}
