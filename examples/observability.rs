//! Observability: watch a model-checking run live and read its metrics.
//!
//! Attaches an enabled [`ftobs::Recorder`] to a DPOR check of the 3-process
//! Filter lock under PSO: heartbeats stream to stderr while the search
//! runs, program counters are labelled with the `fencevm` instruction text
//! so the hot-pc table is readable, and afterwards the merged
//! [`ftobs::MetricsSnapshot`] is unpacked — the same counters the engine
//! differential suite proves bit-identical across engines, including the
//! paper's per-execution quantities β(E) (fences) and ρ(E) (RMRs).
//!
//! ```sh
//! cargo run --example observability
//! ```

use fence_trade::ftobs::{self, Gauge, Metric, Recorder};
use fence_trade::prelude::*;

fn main() {
    let inst = build_mutex(LockKind::Filter, 3, FenceMask::ALL);

    // An enabled recorder: heartbeat every 250 ms to stderr, events kept
    // in the in-memory ring (add `.sink(...)` to stream JSONL to disk for
    // the `obs_report` tool).
    let rec = Recorder::builder()
        .meta("workload", "filter3_pso")
        .heartbeat_ms(250)
        .build();
    for (p, prog) in inst.programs.iter().enumerate() {
        rec.set_pc_labels(p, &prog.pc_labels());
    }

    let cfg = CheckConfig {
        check_termination: false,
        ..CheckConfig::default()
    }
    .with_engine(Engine::Dpor {
        reorder_bound: None,
    })
    .with_recorder(rec.clone());

    let verdict = check(&inst.machine(MemoryModel::Pso), &cfg);
    let snap = rec.snapshot();

    println!("verdict: {}", verdict.label());
    println!(
        "states {} · transitions {} · dedup hits {} · max frontier {}",
        snap.states(),
        snap.transitions(),
        snap.get(Metric::DedupHits),
        snap.gauges[Gauge::MaxFrontier as usize],
    );
    println!(
        "β(E) fences {} · ρ(E) RMRs {} · sleep hits {} · ample applied {}",
        snap.get(Metric::Fences),
        snap.get(Metric::Rmrs),
        snap.get(Metric::SleepHits),
        snap.get(Metric::AmpleApplied),
    );
    for (p, steps) in snap.per_proc.iter().enumerate().take(inst.n) {
        println!("  p{p}: fences {} rmrs {}", steps.fences, steps.rmrs);
    }

    println!("\nwrite-buffer depth at buffered writes:");
    print!("{}", ftobs::report::sketch(&snap.buffer_depth));

    println!("\nhottest program points:");
    for (p, pc, hits, label) in rec.hot_pcs(5) {
        let label = label.unwrap_or_else(|| format!("pc{pc}"));
        println!("  p{p}@{pc} `{label}` × {hits}");
    }

    // The same snapshot travels inside the verdict for offline use.
    assert_eq!(verdict.stats().metrics, snap);
}
