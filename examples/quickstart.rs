//! Quickstart: build the paper's `Count` object over two locks, run it in
//! the PSO write-buffer machine, and see the fence/RMR tradeoff.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fence_trade::prelude::*;

fn main() {
    let n = 16;
    println!("Count object over {n} processes, PSO write-buffer machine\n");
    println!(
        "{:<14} {:>8} {:>8} {:>22}",
        "lock", "fences", "RMRs", "f(log(r/f)+1)/log n"
    );

    for kind in [
        LockKind::Bakery,
        LockKind::Gt { f: 2 },
        LockKind::Gt { f: 3 },
        LockKind::Tournament,
    ] {
        let inst = build_ordering(kind, n, ObjectKind::Counter);
        let cost = solo_passage(&inst, MemoryModel::Pso, 1_000_000);
        println!(
            "{:<14} {:>8} {:>8} {:>22.2}",
            kind.to_string(),
            cost.fences,
            cost.rmrs,
            normalized_tradeoff(cost.fences, cost.rmrs, n)
        );
    }

    println!("\nBakery buys its O(1) fences with Θ(n) RMRs; the tournament pays");
    println!("Θ(log n) fences for Θ(log n) RMRs; GT_f sweeps the curve between.");
    println!("The normalized product stays Θ(1): the tradeoff is tight (Thm 4.2 + §3).");

    // And the locks really are ordering algorithms: sequential runs return
    // ranks 0..n-1.
    let inst = build_ordering(LockKind::Gt { f: 2 }, 6, ObjectKind::Counter);
    let returns = inst.run_sequential(MemoryModel::Pso, 1_000_000);
    println!("\nsequential GT_2 counter returns: {returns:?}");
    assert_eq!(returns, (0..6).collect::<Vec<u64>>());
}
