//! Durable checkpoint/resume: interrupt an exhaustive sweep of the
//! tournament lock under PSO, snapshot the live frontier to disk, and
//! finish the proof in a second run — reaching the exact verdict (and
//! state count) an uninterrupted run would have.
//!
//! The same mechanism survives a real `kill -9`: the snapshot is written
//! through a temp-file + fsync + rename protocol, so the path on disk
//! either holds a complete, checksummed checkpoint or the previous one.
//!
//! ```text
//! cargo run --release --example resume
//! ```

use fence_trade::prelude::*;

fn main() {
    let inst = build_mutex(LockKind::Tournament, 2, FenceMask::ALL);
    let machine = || inst.machine(MemoryModel::Pso);
    let config = CheckConfig::default();

    // The uninterrupted reference run.
    let fresh = check(&machine(), &config);
    println!("== Tournament lock, n = 2, PSO ==\n");
    println!(
        "uninterrupted : {} ({} states, {} transitions)",
        fresh.label(),
        fresh.stats().states,
        fresh.stats().transitions
    );

    // Interrupt the same sweep partway through. `stop_after` is a
    // deterministic stand-in for a wall-clock budget or a SIGINT-raised
    // interrupt flag — all three take the same checkpoint path.
    let ckpt = std::env::temp_dir().join("fence_trade_resume_example.ckpt");
    let cut = (fresh.stats().transitions as u64) / 3;
    let interrupted = check(
        &machine(),
        &config
            .clone()
            .with_checkpoint(CheckpointPolicy::at(&ckpt).stop_after(cut)),
    );
    let coverage = interrupted.coverage().expect("the cut fired mid-sweep");
    let path = coverage.checkpoint.expect("stop wrote a checkpoint");
    println!(
        "interrupted   : {} after {} transitions, {} open fork points\n\
         checkpoint    : {} ({} bytes)",
        interrupted.label(),
        interrupted.stats().transitions,
        coverage.frontier,
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // Resume: the snapshot pre-seeds the fingerprint table and replays
    // the serialized fork points, so only the unexplored remainder runs.
    let resumed = resume(&machine(), &config, &path);
    println!(
        "resumed       : {} ({} states, {} transitions)",
        resumed.label(),
        resumed.stats().states,
        resumed.stats().transitions
    );

    assert_eq!(fresh.label(), resumed.label());
    assert_eq!(fresh.stats().states, resumed.stats().states);
    println!("\nInterrupted + resumed == uninterrupted, state for state.");

    let _ = std::fs::remove_file(&path);
}
