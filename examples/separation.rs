//! The memory-model separation, machine-checked: Peterson's lock with a
//! single store–load fence is correct under TSO but broken under PSO — the
//! model checker prints the violating schedule. Bonus: the write order as
//! *printed* in the paper's Algorithm 1 listing is broken even under SC.
//!
//! ```text
//! cargo run --release --example separation
//! ```

use fence_trade::prelude::*;
use fence_trade::simlocks::peterson::{SITE_RELEASE, SITE_VICTIM};

fn main() {
    let cfg = CheckConfig {
        check_termination: false,
        ..CheckConfig::default()
    };

    println!("== Peterson, fence only after the victim write (store-load fence) ==\n");
    let mask = FenceMask::only(&[SITE_VICTIM, SITE_RELEASE]);
    let inst = build_mutex(LockKind::Peterson, 2, mask);
    for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
        let verdict = check(&inst.machine(model), &cfg);
        println!(
            "{model}: {} ({} states)",
            verdict.label(),
            verdict.stats().states
        );
        if let Verdict::MutexViolation(_, cex) = &verdict {
            println!("\n{cex}");
        }
    }

    println!("== Full elision table (which fences does each model need?) ==\n");
    let masks = FenceMask::enumerate(3);
    let models = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];
    let rows = elision_table(LockKind::Peterson, 2, &masks, &models, &cfg, 1);
    println!(
        "{:<14} {:>6} {:>8} {:>8} {:>8}",
        "fences", "count", "SC", "TSO", "PSO"
    );
    for row in &rows {
        let v: Vec<&str> = row.verdicts.iter().map(|&(_, label, _)| label).collect();
        println!(
            "{:<14} {:>6} {:>8} {:>8} {:>8}",
            row.mask_desc, row.enabled, v[0], v[1], v[2]
        );
    }
    println!("\nTSO needs one acquire fence (after victim); PSO needs both write");
    println!("fences — write reordering is exactly what the extra fence buys off.");

    println!("\n== The paper's printed Bakery listing (C[i]:=0 before T[i]:=tmp) ==\n");
    let inst = build_mutex(LockKind::BakeryPaperListing, 2, FenceMask::ALL);
    let verdict = check(&inst.machine(MemoryModel::Sc), &cfg);
    println!("SC: {}", verdict.label());
    if let Verdict::MutexViolation(_, cex) = &verdict {
        println!("\n{cex}");
        println!("(Lamport's original publishes the ticket inside the doorway; the");
        println!("listing's inverted lines 6-7 open a window where the door reads");
        println!("closed but the ticket is still 0. Our default Bakery uses the");
        println!("correct order and passes the same check.)");
    }
}
