//! Explore and compare reachable state spaces: how much nondeterminism
//! does each memory model add? PSO's commit freedom multiplies states —
//! the very freedom the lower bound's adversary exploits.
//!
//! ```text
//! cargo run --release --example state_explorer
//! ```

use fence_trade::prelude::*;

fn main() {
    let cfg = CheckConfig {
        check_termination: false,
        ..CheckConfig::default()
    };

    println!(
        "{:<22} {:>4} {:>10} {:>12} {:>12} {:>10}",
        "instance", "n", "model", "states", "transitions", "terminals"
    );

    let cases: Vec<(LockKind, usize)> = vec![
        (LockKind::Peterson, 2),
        (LockKind::Ttas, 2),
        (LockKind::Ttas, 3),
        (LockKind::Bakery, 2),
        (LockKind::Tournament, 2),
    ];

    for (kind, n) in cases {
        explore(&build_mutex(kind, n, FenceMask::ALL), n, &cfg);
    }

    // A weakly fenced variant: with no fence between the two acquire
    // writes, PSO's commit freedom visibly enlarges the state space beyond
    // TSO's (and breaks the lock).
    let weak = build_mutex(LockKind::Peterson, 2, FenceMask::only(&[1, 2]));
    explore(&weak, 2, &cfg);

    println!(
        "\nEvery row is an exhaustive exploration (interleavings AND commit \
         orders).\nWith a fence after every write the buffer never holds two \
         writes, so TSO and\nPSO coincide. Elide a write fence (last rows) and \
         PSO's extra commit orders\nappear — the very freedom the Section-5 \
         encoding spends its bits on, and the\nfreedom that breaks the \
         single-fence Peterson."
    );
}

fn explore(inst: &OrderingInstance, n: usize, cfg: &CheckConfig) {
    for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
        let v = check(&inst.machine(model), cfg);
        let s = v.stats();
        println!(
            "{:<22} {n:>4} {:>10} {:>12} {:>12} {:>10}   {}",
            inst.name,
            model.to_string(),
            s.states,
            s.transitions,
            s.terminal_states,
            v.label()
        );
    }
}
