//! Sweep the whole `GT_f` spectrum: for each fence budget `f`, measure
//! fences and RMRs per uncontended passage and check them against the
//! paper's predictions `O(f)` and `O(f·n^(1/f))` (equation (2)).
//!
//! ```text
//! cargo run --release --example tradeoff_sweep [n]
//! ```

use fence_trade::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let log_n = (n as f64).log2().ceil() as usize;

    println!("GT_f sweep at n = {n} (uncontended passage, PSO machine)\n");
    println!(
        "{:>3} {:>5} {:>8} {:>8} {:>12} {:>12} {:>10}",
        "f", "b", "fences", "RMRs", "pred fences", "pred r-scale", "norm prod"
    );

    for f in 1..=log_n {
        let inst = build_ordering(LockKind::Gt { f }, n, ObjectKind::Counter);
        let cost = solo_passage(&inst, MemoryModel::Pso, 10_000_000);
        let b = fence_trade::simlocks::branching_factor(n, f);
        println!(
            "{f:>3} {b:>5} {:>8} {:>8} {:>12} {:>12.0} {:>10.2}",
            cost.fences,
            cost.rmrs,
            predicted_gt_fences(f),
            predicted_gt_rmrs(n, f),
            normalized_tradeoff(cost.fences, cost.rmrs, n),
        );
    }

    println!("\nfences grow linearly in f; RMRs shrink as f·n^(1/f); their");
    println!("tradeoff product stays within a constant factor of log n.");
}
