#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, and the full test suite.
#
# Usage: scripts/ci.sh
# Environment: FT_THREADS caps the worker count of the parallel sweeps the
# tests and experiment binaries run (default: available cores).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI green."
