#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, and the full test suite.
#
# Usage: scripts/ci.sh
# Environment: FT_THREADS caps the worker count of the parallel sweeps the
# tests and experiment binaries run (default: available cores).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q (FT_THREADS=2, exercises the parallel sweeps/engine)"
FT_THREADS=2 cargo test -q

echo "==> DPOR differential suite (FT_THREADS=2)"
FT_THREADS=2 cargo test -q -p modelcheck --test differential_dpor

echo "==> work-stealing parallel DPOR differential suite (FT_THREADS=2)"
FT_THREADS=2 cargo test -q -p modelcheck --test differential_pardpor

echo "==> checkpoint/resume differential suite (interrupt + resume == uninterrupted, FT_THREADS=2)"
FT_THREADS=2 cargo test -q -p modelcheck --test differential_resume

echo "==> watchdog supervisor test (stalled worker -> cancel + sequential fallback)"
cargo test -q -p modelcheck --test watchdog

echo "==> fingerprint-table stress suite (CAS insert races, segment spill, dedup exactness)"
cargo test -q -p por --test fptable_stress

echo "==> E11 crash-recovery experiment (n = 2)"
FT_E11_FAST=1 cargo run --release -p ft-bench --bin exp_e11_crash_recovery

echo "==> E12 reduction experiment (fast mode: n = 2 factors only)"
FT_E12_FAST=1 cargo run --release -p ft-bench --bin exp_e12_reduction

echo "==> fence-synthesis differential suite (engine x model x crash matrix + minimality proptest, FT_THREADS=2)"
FT_THREADS=2 cargo test -q -p ftsynth --test differential_synth

echo "==> E16 synthesis experiment (fast mode: n = 2 CEGAR + Pareto sweep)"
FT_E16_FAST=1 cargo run --release -p ft-bench --bin exp_e16_synthesis

echo "==> obs proptest suite (metrics merge algebra, shard folding)"
cargo test -q -p ftobs --test proptests

echo "==> trace-stream durability tests (live .partial parse, torn-tail tolerance)"
cargo test -q -p ftobs --test trace_stream

echo "==> differential tracing suite (traced == untraced verdicts/metrics + span-forest proptest, FT_THREADS=2)"
FT_THREADS=2 cargo test -q -p modelcheck --test differential_trace

echo "==> E17 estimator + trace experiment (fast mode: 2 cells, 2 cuts, traced pardpor/resume)"
FT_E17_FAST=1 cargo run --release -p ft-bench --bin exp_e17_estimator

echo "==> obs_trace smoke run (forest validation + Chrome trace export of the E17 stream)"
cargo run --release -p ft-bench --bin obs_trace results/obs/e17_trace.jsonl > /dev/null

echo "==> obs_report smoke run (renders the JSONL the E12 run just wrote)"
cargo run --release -p ft-bench --bin obs_report > /dev/null

echo "==> observability overhead guard (enabled and traced ≤5%, disabled ≤10% vs baseline, bakery3_pso)"
cargo run --release -p ft-bench --bin obs_overhead

echo "==> parallel DPOR guard (≥1.5x scaling on multi-core, ≤5% threads=1 regression, filter3_pso)"
cargo run --release -p ft-bench --bin pardpor_guard

echo "==> fleet chaos differential suite (lease reassignment, torn results, degradation ladder)"
cargo test -q -p ftfleet

echo "==> fleet guard (kill-one-worker chaos smoke: fleet verdict+metrics == fault-free fleet; skipped on 1 core)"
cargo run --release -p ft-bench --bin fleet_guard

echo "==> E18 fleet experiment (fast mode: 2 cells x fault-free + chaos fleets, exactness asserted)"
FT_E18_FAST=1 cargo run --release -p ft-bench --bin exp_e18_fleet

echo "==> E15 resume-overhead experiment (fast mode)"
FT_E15_FAST=1 cargo run --release -p ft-bench --bin exp_e15_resume

echo "==> kill-and-resume smoke + checkpoint guard (n=3 DPOR cut -> checkpoint -> resume == fresh; overhead ≤10%)"
cargo run --release -p ft-bench --bin checkpoint_guard

echo "CI green."
