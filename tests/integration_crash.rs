//! Crash-fault injection end to end: the acceptance criteria of the
//! crash/recovery milestone, exercised through the public `fence-trade`
//! API.

use std::time::Duration;

use fence_trade::prelude::*;
use fence_trade::simlocks::ANNOT_IN_CS;
use fence_trade::wbmem::{SchedElem, SoloOutcome};

fn crash_cfg(max_crashes: u32) -> CheckConfig {
    CheckConfig {
        check_termination: true,
        ..CheckConfig::default()
    }
    .with_crashes(CrashSemantics::DiscardBuffer, max_crashes)
}

#[test]
fn crash_hardened_locks_pass_mutex_and_recovery_under_pso() {
    for kind in [LockKind::RecoverableTtas, LockKind::RecoverableBakery] {
        let inst = build_mutex(kind, 2, FenceMask::ALL);
        for model in [MemoryModel::Tso, MemoryModel::Pso] {
            let v = check(&inst.machine(model), &crash_cfg(2));
            assert!(v.is_ok(), "{} {model}: {}", inst.name, v.label());
        }
    }
}

#[test]
fn naive_ttas_yields_a_replayable_crash_counterexample() {
    let inst = build_mutex(LockKind::Ttas, 2, FenceMask::ALL);
    let v = check(&inst.machine(MemoryModel::Pso), &crash_cfg(1));
    let Verdict::NoTermination(_, cex) = v else {
        panic!("expected NO-TERMINATION, got {}", v.label());
    };
    assert!(cex.trace.contains("crash"), "trace:\n{}", cex.trace);

    // The schedule replays on a fresh machine (with the same crash bound)
    // without hitting a no-op element.
    let mcfg = MachineConfig::new(MemoryModel::Pso, inst.layout.clone())
        .with_crashes(CrashSemantics::DiscardBuffer, 1);
    let mut m = inst.machine_from(mcfg);
    for (i, &elem) in cex.schedule.iter().enumerate() {
        assert!(
            !matches!(m.step(elem), fence_trade::wbmem::StepOutcome::NoOp),
            "counterexample step {i} ({elem:?}) was a no-op"
        );
    }
}

#[test]
fn a_crash_drops_a_buffered_release_write() {
    // Drive p0 through its passage up to (and including) the buffered
    // release write, then crash it: the write dies in the buffer and the
    // rival spins forever on the stale lock word.
    let inst = build_mutex(LockKind::Ttas, 2, FenceMask::ALL);
    let mcfg = MachineConfig::new(MemoryModel::Pso, inst.layout.clone())
        .with_crashes(CrashSemantics::DiscardBuffer, 1);
    let mut m = inst.machine_from(mcfg);
    let p0 = ProcId(0);
    while m.annotation(p0) != ANNOT_IN_CS {
        m.step(SchedElem::op(p0));
    }
    while m.annotation(p0) == ANNOT_IN_CS {
        m.step(SchedElem::op(p0));
    }
    m.step(SchedElem::op(p0)); // the release write parks in the buffer
    m.step(SchedElem::crash(p0));
    assert_eq!(m.counters().proc(0).crashes, 1);
    assert!(matches!(
        m.solo_outcome(ProcId(1), 100_000),
        SoloOutcome::Diverges { .. }
    ));
}

#[test]
fn all_engines_agree_on_a_crash_workload() {
    let inst = build_mutex(LockKind::RecoverableTtas, 2, FenceMask::ALL);
    let verdicts: Vec<Verdict> = [
        Engine::CloneDfs,
        Engine::Undo,
        Engine::Parallel { threads: 4 },
    ]
    .into_iter()
    .map(|engine| {
        check(
            &inst.machine(MemoryModel::Pso),
            &crash_cfg(2).with_engine(engine),
        )
    })
    .collect();
    for v in &verdicts[1..] {
        assert_eq!(verdicts[0].label(), v.label());
        assert_eq!(verdicts[0].stats(), v.stats());
    }
}

#[test]
fn budgeted_runs_return_inconclusive_with_coverage() {
    let inst = build_mutex(LockKind::Bakery, 3, FenceMask::ALL);
    let cfg = CheckConfig {
        check_termination: false,
        ..CheckConfig::default()
    }
    .with_budget(Duration::ZERO);
    let v = check(&inst.machine(MemoryModel::Pso), &cfg);
    assert_eq!(v.label(), "inconclusive");
    let coverage = v.coverage().expect("inconclusive carries coverage");
    assert!(v.stats().states >= 1);
    assert!(coverage.frontier >= 1);
}
