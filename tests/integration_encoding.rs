//! Cross-crate integration for the Section-5 machinery: encode random
//! permutations over several ordering algorithms, verify invariants, and
//! round-trip through the bit codec.

use fence_trade::lowerbound::{self, check_all, log2_factorial};
use fence_trade::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn random_perm(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    v.shuffle(rng);
    v
}

fn full_round_trip(inst: &OrderingInstance, pi: &[usize]) -> lowerbound::Encoding {
    let enc = encode_permutation(inst, pi, &EncodeOptions::default())
        .unwrap_or_else(|e| panic!("{} pi={pi:?}: {e}", inst.name));
    assert_eq!(enc.recovered_permutation(), pi, "{}", inst.name);

    let violations = check_all(&enc);
    assert!(
        violations.is_empty(),
        "{} pi={pi:?}: {violations:?}",
        inst.name
    );

    // bits -> stacks -> execution -> pi
    let bits = lowerbound::serialize_stacks(&enc.stacks);
    let back = lowerbound::deserialize_stacks(&bits, inst.n).expect("codec");
    assert_eq!(back, enc.stacks);
    let out = decode(&proof_machine(inst), &back, &DecodeOptions::default()).expect("decode");
    assert_eq!(recover_permutation(&out.machine), pi);
    enc
}

#[test]
fn bakery_counter_random_permutations() {
    let mut rng = SmallRng::seed_from_u64(7);
    let inst = build_ordering(LockKind::Bakery, 6, ObjectKind::Counter);
    for _ in 0..5 {
        let pi = random_perm(6, &mut rng);
        full_round_trip(&inst, &pi);
    }
}

#[test]
fn gt_counter_random_permutations() {
    let mut rng = SmallRng::seed_from_u64(11);
    for f in [2usize, 3] {
        let inst = build_ordering(LockKind::Gt { f }, 6, ObjectKind::Counter);
        for _ in 0..3 {
            let pi = random_perm(6, &mut rng);
            full_round_trip(&inst, &pi);
        }
    }
}

#[test]
fn tournament_counter_random_permutations() {
    let mut rng = SmallRng::seed_from_u64(13);
    let inst = build_ordering(LockKind::Tournament, 4, ObjectKind::Counter);
    for _ in 0..4 {
        let pi = random_perm(4, &mut rng);
        full_round_trip(&inst, &pi);
    }
}

#[test]
fn queue_object_encodes_too() {
    let inst = build_ordering(LockKind::Bakery, 4, ObjectKind::Queue);
    for pi in [vec![0, 1, 2, 3], vec![3, 2, 1, 0], vec![1, 3, 0, 2]] {
        full_round_trip(&inst, &pi);
    }
}

#[test]
fn codes_are_injective_across_all_permutations_of_four() {
    let inst = build_ordering(LockKind::Bakery, 4, ObjectKind::Counter);
    let mut codes = std::collections::HashSet::new();
    let mut count = 0;
    // All 24 permutations of 4.
    for a in 0..4usize {
        for b in 0..4usize {
            for c in 0..4usize {
                for d in 0..4usize {
                    let pi = vec![a, b, c, d];
                    let mut sorted = pi.clone();
                    sorted.sort_unstable();
                    if sorted != vec![0, 1, 2, 3] {
                        continue;
                    }
                    let enc = encode_permutation(&inst, &pi, &EncodeOptions::default())
                        .unwrap_or_else(|e| panic!("pi={pi:?}: {e}"));
                    let bits = lowerbound::serialize_stacks(&enc.stacks);
                    codes.insert(bits.to_bytes());
                    count += 1;
                }
            }
        }
    }
    assert_eq!(count, 24);
    assert_eq!(codes.len(), 24, "all 24 codes must be distinct");
}

#[test]
fn code_length_tracks_the_analytic_bound() {
    let mut rng = SmallRng::seed_from_u64(23);
    for n in [4usize, 8] {
        let inst = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
        let pi = random_perm(n, &mut rng);
        let enc = full_round_trip(&inst, &pi);
        let bits = lowerbound::serialize_stacks(&enc.stacks).len() as f64;
        let bound = lowerbound::analytic_bound_bits(enc.commands, enc.value_sum, n);
        assert!(bits <= bound, "n={n}: {bits} bits > analytic bound {bound}");
        // And the information-theoretic floor is respected on average; a
        // single code is allowed to be short, but ours carry per-command
        // overhead, so they clear log2(n!) comfortably.
        assert!(
            bits >= log2_factorial(n),
            "n={n}: code shorter than log2(n!)"
        );
    }
}

#[test]
fn theorem_4_2_inequality_on_measured_executions() {
    // β(E)·(log(ρ/β)+1) must be Ω(n log n); empirically the constant is
    // comfortably above 1 for Bakery-Count.
    let mut rng = SmallRng::seed_from_u64(31);
    for n in [4usize, 6, 8] {
        let inst = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
        let pi = random_perm(n, &mut rng);
        let enc = encode_permutation(&inst, &pi, &EncodeOptions::default()).unwrap();
        let lhs = theorem_lhs(enc.beta, enc.rho);
        assert!(
            lhs >= n_log_n(n),
            "n={n}: beta(log(rho/beta)+1) = {lhs} below n log n = {}",
            n_log_n(n)
        );
    }
}
