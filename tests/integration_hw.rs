//! Hardware-lock integration: stress under real threads, and agreement of
//! hardware fence counts with the simulator's β for the same algorithm.

use fence_trade::hwlocks::testutil::stress_mutual_exclusion;
use fence_trade::prelude::*;

#[test]
fn all_hw_locks_stress_clean() {
    stress_mutual_exclusion(&HwBakery::new(3), 3, 400);
    stress_mutual_exclusion(&HwPeterson::new(), 2, 800);
    stress_mutual_exclusion(&HwTournament::new(4), 4, 300);
    stress_mutual_exclusion(&HwGt::new(6, 2), 4, 300);
    stress_mutual_exclusion(&HwTtas::new(), 4, 400);
    stress_mutual_exclusion(&HwMcs::new(4), 4, 400);
}

#[test]
fn strong_primitive_locks_agree_with_simulator_shape() {
    // Uncontended: TTAS pays 1 fence, MCS 0 — matching the simulator's
    // per-passage lock fences (its instance adds the 2 object fences).
    let ttas = HwTtas::new();
    ttas.acquire(0);
    ttas.release(0);
    assert_eq!(ttas.fences(), 1);

    let mcs = HwMcs::new(4);
    mcs.acquire(0);
    mcs.release(0);
    assert_eq!(mcs.fences(), 0);

    let sim_ttas = build_ordering(LockKind::Ttas, 4, ObjectKind::Counter);
    let sim = solo_passage(&sim_ttas, MemoryModel::Pso, 100_000);
    assert_eq!(sim.fences - 2.0, ttas.fences() as f64);

    let sim_mcs = build_ordering(LockKind::Mcs, 4, ObjectKind::Counter);
    let sim = solo_passage(&sim_mcs, MemoryModel::Pso, 100_000);
    assert_eq!(sim.fences - 2.0, mcs.fences() as f64);
}

#[test]
fn hardware_fences_match_simulator_beta_per_passage() {
    // Same algorithm, same fence sites: the hardware counter and the
    // simulator's β must agree on the *lock* fences per uncontended
    // passage (the simulator instance adds 2 object/final fences).
    let n = 8;
    for f in [1usize, 2, 3] {
        let hw = HwGt::new(n, f);
        hw.acquire(0);
        hw.release(0);
        let hw_fences = hw.fences() as f64;

        let inst = build_ordering(LockKind::Gt { f }, n, ObjectKind::Counter);
        let sim = solo_passage(&inst, MemoryModel::Pso, 1_000_000);
        assert_eq!(sim.fences - 2.0, hw_fences, "f={f}");
    }
}

#[test]
fn counting_lock_ranks_are_a_permutation_under_contention() {
    let threads = 3;
    let iters = 300;
    let counter = CountingLock::new(HwGt::new(4, 2));
    let mut ranks: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let counter = &counter;
                scope.spawn(move || (0..iters).map(|_| counter.next(tid)).collect::<Vec<u64>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    ranks.sort_unstable();
    assert_eq!(ranks, (0..(threads * iters) as u64).collect::<Vec<u64>>());
}

#[test]
fn with_lock_runs_closure_under_mutex() {
    let lock = HwBakery::new(2);
    let v = fence_trade::hwlocks::with_lock(&lock, 0, || 41 + 1);
    assert_eq!(v, 42);
    // Lock is free again.
    lock.acquire(1);
    lock.release(1);
}
