//! Cross-crate integration: every lock family × every memory model, under
//! sequential, fair round-robin, and randomized adversarial schedules.
//!
//! The matrix cells are independent, so each test fans its cells out over
//! scoped worker threads ([`par_for_each`]). Worker count follows
//! `FT_THREADS` like `ft_bench::parallelism()` does (re-implemented locally:
//! depending on `ft-bench` from here would be a dev-dependency cycle).

use std::sync::atomic::{AtomicUsize, Ordering};

use fence_trade::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `FT_THREADS` if set to a positive integer, else the available cores.
fn parallelism() -> usize {
    let auto = || std::thread::available_parallelism().map_or(1, |p| p.get());
    match std::env::var("FT_THREADS") {
        Ok(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(auto),
        Err(_) => auto(),
    }
}

/// Run `f` over every cell on up to [`parallelism`] scoped threads. A panic
/// in any cell (assertion failure) propagates when the scope joins, so
/// failures still fail the test.
fn par_for_each<T: Sync>(cells: &[T], f: impl Fn(&T) + Sync) {
    let threads = parallelism().min(cells.len());
    if threads <= 1 {
        cells.iter().for_each(f);
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                f(cell);
            });
        }
    });
}

fn all_kinds(n: usize) -> Vec<LockKind> {
    let mut kinds = vec![
        LockKind::Bakery,
        LockKind::Gt { f: 2 },
        LockKind::Gt { f: 3 },
    ];
    if n.is_power_of_two() && n >= 2 {
        kinds.push(LockKind::Tournament);
    }
    if n == 2 {
        kinds.push(LockKind::Peterson);
    }
    kinds
}

#[test]
fn sequential_runs_return_ranks_everywhere() {
    let mut cells = Vec::new();
    for n in [2usize, 4, 6] {
        for kind in all_kinds(n) {
            for object in [ObjectKind::Counter, ObjectKind::Queue] {
                cells.push((n, kind, object));
            }
        }
    }
    par_for_each(&cells, |&(n, kind, object)| {
        let inst = build_ordering(kind, n, object);
        for model in [
            MemoryModel::Sc,
            MemoryModel::Tso,
            MemoryModel::Pso,
            MemoryModel::Rmo,
        ] {
            let rets = inst.run_sequential(model, 1_000_000);
            assert_eq!(
                rets,
                (0..n as u64).collect::<Vec<u64>>(),
                "{} under {model}",
                inst.name
            );
        }
    });
}

#[test]
fn round_robin_completes_and_returns_a_permutation() {
    let mut cells = Vec::new();
    for n in [4usize, 8] {
        for kind in all_kinds(n) {
            for model in [MemoryModel::Tso, MemoryModel::Pso] {
                cells.push((n, kind, model));
            }
        }
    }
    par_for_each(&cells, |&(n, kind, model)| {
        let inst = build_ordering(kind, n, ObjectKind::Counter);
        let mut m = inst.machine(model);
        assert!(
            fence_trade::simlocks::run_to_completion(&mut m, 50_000_000),
            "{} stuck under {model}",
            inst.name
        );
        let mut rets: Vec<u64> = m.return_values().into_iter().map(Option::unwrap).collect();
        rets.sort_unstable();
        assert_eq!(rets, (0..n as u64).collect::<Vec<u64>>(), "{}", inst.name);
    });
}

/// Drive a machine with uniformly random enabled choices (interleavings
/// *and* commit orders); mutual exclusion must hold in every visited state.
fn random_adversary_preserves_mutex(kind: LockKind, n: usize, model: MemoryModel, seed: u64) {
    let inst = build_mutex(kind, n, FenceMask::ALL);
    let mut m = inst.machine(model);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..60_000 {
        let choices = m.choices();
        if choices.is_empty() {
            break;
        }
        let pick = choices[rng.gen_range(0..choices.len())];
        m.step(pick);
        let in_cs = (0..n)
            .filter(|&i| m.annotation(ProcId::from(i)) == fence_trade::simlocks::ANNOT_IN_CS)
            .count();
        assert!(
            in_cs <= 1,
            "{kind} n={n} {model} seed={seed}: mutex violated"
        );
    }
}

#[test]
fn random_adversarial_schedules_preserve_mutex() {
    let mut cells = Vec::new();
    for seed in 0..4u64 {
        cells.push((LockKind::Bakery, 3, MemoryModel::Pso, seed));
        cells.push((LockKind::Gt { f: 2 }, 4, MemoryModel::Pso, seed));
        cells.push((LockKind::Tournament, 4, MemoryModel::Pso, seed));
        cells.push((LockKind::Peterson, 2, MemoryModel::Tso, seed));
    }
    par_for_each(&cells, |&(kind, n, model, seed)| {
        random_adversary_preserves_mutex(kind, n, model, seed);
    });
}

#[test]
fn rmo_behaves_like_pso_for_these_algorithms() {
    let inst = build_ordering(LockKind::Gt { f: 2 }, 4, ObjectKind::Counter);
    let solo_pso = solo_passage(&inst, MemoryModel::Pso, 1_000_000);
    let solo_rmo = solo_passage(&inst, MemoryModel::Rmo, 1_000_000);
    assert_eq!(solo_pso.fences, solo_rmo.fences);
    assert_eq!(solo_pso.rmrs, solo_rmo.rmrs);
}

#[test]
fn sc_and_pso_solo_rmr_counts_coincide() {
    // Under SC writes commit immediately; commit locality is identical, so
    // solo RMR counts agree with PSO for these programs.
    let inst = build_ordering(LockKind::Bakery, 8, ObjectKind::Counter);
    let pso = solo_passage(&inst, MemoryModel::Pso, 1_000_000);
    let sc = solo_passage(&inst, MemoryModel::Sc, 1_000_000);
    assert_eq!(sc.rmrs, pso.rmrs);
    assert_eq!(sc.fences, pso.fences);
}
