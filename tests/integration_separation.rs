//! The TSO/PSO separation and fence-ablation results, as integration tests.

use fence_trade::prelude::*;
use fence_trade::simlocks::peterson::{SITE_FLAG, SITE_RELEASE, SITE_VICTIM};

fn cfg() -> CheckConfig {
    CheckConfig {
        check_termination: false,
        ..CheckConfig::default()
    }
}

#[test]
fn separation_witness_one_fence_tso_ok_pso_broken() {
    let mask = FenceMask::only(&[SITE_VICTIM, SITE_RELEASE]);
    let inst = build_mutex(LockKind::Peterson, 2, mask);
    assert!(check(&inst.machine(MemoryModel::Tso), &cfg()).is_ok());
    let pso = check(&inst.machine(MemoryModel::Pso), &cfg());
    assert!(
        matches!(pso, Verdict::MutexViolation(..)),
        "got {}",
        pso.label()
    );
}

#[test]
fn fully_fenced_locks_pass_under_pso() {
    for (kind, n) in [
        (LockKind::Peterson, 2usize),
        (LockKind::Bakery, 2),
        (LockKind::Tournament, 2),
        (LockKind::Gt { f: 2 }, 2),
    ] {
        let inst = build_mutex(kind, n, FenceMask::ALL);
        let v = check(&inst.machine(MemoryModel::Pso), &cfg());
        assert!(v.is_ok(), "{kind}: {}", v.label());
    }
}

#[test]
fn minimal_acquire_fences_differ_between_tso_and_pso() {
    let masks = FenceMask::enumerate(3);
    let models = [MemoryModel::Tso, MemoryModel::Pso];
    let rows = elision_table(LockKind::Peterson, 2, &masks, &models, &cfg(), 1);
    let min_acquire = |model: MemoryModel| {
        rows.iter()
            .filter(|r| r.ok_under(model))
            .map(|r| u32::from(r.mask.has(SITE_FLAG)) + u32::from(r.mask.has(SITE_VICTIM)))
            .min()
            .expect("some correct placement exists")
    };
    assert_eq!(min_acquire(MemoryModel::Tso), 1);
    assert_eq!(min_acquire(MemoryModel::Pso), 2);
}

#[test]
fn ordering_object_checks_out_exhaustively_for_two_processes() {
    // Exhaustive exploration of the counter object over Peterson: mutual
    // exclusion and permutation-of-returns in every terminal state.
    let inst = build_ordering(LockKind::Peterson, 2, ObjectKind::Counter);
    let config = CheckConfig {
        check_permutation: true,
        check_termination: false,
        ..CheckConfig::default()
    };
    for model in [MemoryModel::Tso, MemoryModel::Pso] {
        let v = check(&inst.machine(model), &config);
        assert!(v.is_ok(), "{model}: {}", v.label());
    }
}

#[test]
fn paper_listing_bakery_violates_even_sc_but_fixed_order_is_clean() {
    let broken = build_mutex(LockKind::BakeryPaperListing, 2, FenceMask::ALL);
    let v = check(&broken.machine(MemoryModel::Sc), &cfg());
    assert!(
        matches!(v, Verdict::MutexViolation(..)),
        "got {}",
        v.label()
    );

    let fixed = build_mutex(LockKind::Bakery, 2, FenceMask::ALL);
    let v = check(&fixed.machine(MemoryModel::Sc), &cfg());
    assert!(v.is_ok(), "got {}", v.label());
}
