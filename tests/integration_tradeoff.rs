//! Integration of measurement and theory: equation (1)'s product, equation
//! (2)'s tightness along `GT_f`, and the endpoint identities.

use fence_trade::prelude::*;

#[test]
fn gt_family_matches_equation_2_shapes() {
    let n = 64;
    for f in [1usize, 2, 3, 6] {
        let inst = build_ordering(LockKind::Gt { f }, n, ObjectKind::Counter);
        let cost = solo_passage(&inst, MemoryModel::Pso, 10_000_000);
        // O(f) fences, exactly 4f + 2 in our construction.
        assert_eq!(cost.fences, predicted_gt_fences(f), "f={f}");
        // O(f·n^(1/f)) RMRs: within a small constant of the prediction.
        let scale = predicted_gt_rmrs(n, f);
        assert!(
            cost.rmrs >= scale * 0.5,
            "f={f}: rmrs={} vs scale {scale}",
            cost.rmrs
        );
        assert!(
            cost.rmrs <= scale * 6.0 + 16.0,
            "f={f}: rmrs={} vs scale {scale}",
            cost.rmrs
        );
    }
}

#[test]
fn rmrs_fall_as_fences_rise_until_the_log_n_floor() {
    // The predicted RMR scale f·n^(1/f) drops steeply for small f and
    // flattens near f = log n (for n = 256: 256, 32, 16, 16 at
    // f = 1, 2, 4, 8), where constant overheads take over. Assert the
    // steep region strictly and the flat region loosely.
    let n = 256;
    let cost_at = |f: usize| {
        let inst = build_ordering(LockKind::Gt { f }, n, ObjectKind::Counter);
        solo_passage(&inst, MemoryModel::Pso, 10_000_000)
    };
    let (c1, c2, c4, c8) = (cost_at(1), cost_at(2), cost_at(4), cost_at(8));
    assert!(c1.fences < c2.fences && c2.fences < c4.fences && c4.fences < c8.fences);
    assert!(c2.rmrs < c1.rmrs / 4.0, "f=1→2 must be a steep RMR drop");
    assert!(c4.rmrs < c2.rmrs, "f=2→4 still falls");
    assert!(
        c8.rmrs <= 3.0 * c4.rmrs,
        "past the floor, constants may add a little"
    );
}

#[test]
fn normalized_product_is_a_constant_band_across_n_and_f() {
    for n in [16usize, 64, 256] {
        let log_n = (n as f64).log2() as usize;
        for f in [1usize, 2, log_n] {
            let inst = build_ordering(LockKind::Gt { f }, n, ObjectKind::Counter);
            let cost = solo_passage(&inst, MemoryModel::Pso, 10_000_000);
            let norm = normalized_tradeoff(cost.fences, cost.rmrs, n);
            assert!(
                (0.5..=14.0).contains(&norm),
                "n={n} f={f}: normalized product {norm} escapes the band"
            );
        }
    }
}

#[test]
fn endpoints_bakery_and_tournament() {
    let n = 64;
    // GT_1 has Bakery's profile: O(1) fences, Θ(n) RMRs.
    let gt1 = build_ordering(LockKind::Gt { f: 1 }, n, ObjectKind::Counter);
    let bak = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
    let c_gt1 = solo_passage(&gt1, MemoryModel::Pso, 10_000_000);
    let c_bak = solo_passage(&bak, MemoryModel::Pso, 10_000_000);
    assert_eq!(c_gt1.fences, c_bak.fences, "GT_1 is the Bakery lock");
    assert_eq!(c_gt1.rmrs, c_bak.rmrs, "GT_1 is the Bakery lock");

    // GT_{log n} is tournament-shaped: both Θ(log n).
    let gtl = build_ordering(LockKind::Gt { f: 6 }, n, ObjectKind::Counter);
    let c_gtl = solo_passage(&gtl, MemoryModel::Pso, 10_000_000);
    let tour = build_ordering(LockKind::Tournament, n, ObjectKind::Counter);
    let c_tour = solo_passage(&tour, MemoryModel::Pso, 10_000_000);
    assert!(c_gtl.rmrs <= 4.0 * c_tour.rmrs + 16.0);
    assert!(c_tour.rmrs <= 4.0 * c_gtl.rmrs + 16.0);
}

#[test]
fn contended_bakery_is_quadratic_total_linear_per_passage() {
    for n in [4usize, 8, 16] {
        let inst = build_ordering(LockKind::Bakery, n, ObjectKind::Counter);
        let cost = contended_passage(&inst, MemoryModel::Pso, 100_000_000);
        assert!(
            cost.rmrs >= 1.5 * (n as f64 - 1.0),
            "n={n}: contended per-passage RMRs {} not Ω(n)",
            cost.rmrs
        );
        assert_eq!(cost.fences, 6.0, "n={n}");
    }
}

#[test]
fn fence_counts_are_model_independent() {
    let inst = build_ordering(LockKind::Gt { f: 2 }, 9, ObjectKind::Counter);
    let mut counts = Vec::new();
    for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
        counts.push(solo_passage(&inst, model, 10_000_000).fences);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}
